//! The guest OS memory manager: a [`LayerEngine`] instantiated at the
//! guest layer, plus the guest-only address-space structure (VMAs,
//! demand-fault site lookup, `munmap` teardown) for one VM.

use crate::engine::{FaultSite, Layer, LayerEngine};
use crate::policy::{Effects, FaultOutcome, HugePolicy, LayerKind};
use crate::vma::{Vma, VmaId, VmaSet};
use gemini_buddy::BuddyAllocator;
use gemini_page_table::{AddressSpace, Translation};
use gemini_sim_core::{
    Cycles, Gva, SimError, VmId, HUGE_PAGE_ORDER, HUGE_PAGE_SIZE, PAGES_PER_HUGE_PAGE,
};
use std::collections::HashSet;

/// Marker for the guest layer: GVA → GPA translation, guest page-fault
/// costs, guest-tagged events and counters.
#[derive(Debug)]
pub enum GuestLayer {}

impl Layer for GuestLayer {
    type In = Gva;
    const KIND: LayerKind = LayerKind::Guest;
    const OBS: gemini_obs::Layer = gemini_obs::Layer::Guest;
    const CTR_PROMOTIONS: &'static str = "mm.guest.promotions";
    const CTR_PROMO_PAGES_COPIED: &'static str = "mm.guest.promo_pages_copied";
    const CTR_DEMOTIONS: &'static str = "mm.guest.demotions";

    fn input_addr(frame: u64) -> Gva {
        Gva::from_frame(frame)
    }

    fn already_mapped(addr: Gva) -> SimError {
        SimError::AlreadyMappedGva(addr)
    }
}

/// Memory management of one guest OS (one workload address space, as in
/// the paper's one-workload-per-VM setup).
#[derive(Debug)]
pub struct GuestMm {
    /// VM this guest belongs to.
    pub vm: VmId,
    /// The workload's virtual memory areas.
    pub vmas: VmaSet,
    /// The shared layer machinery (page table, guest-physical buddy,
    /// touch counters, fault/daemon/demotion paths).
    pub engine: LayerEngine<GuestLayer>,
    /// VMAs that have taken at least one fault.
    touched_vmas: HashSet<VmaId>,
}

impl GuestMm {
    /// Creates a guest with `gpa_frames` of guest-physical memory.
    pub fn new(vm: VmId, gpa_frames: u64, costs: crate::costs::CostModel) -> Self {
        let mut engine = LayerEngine::new(gpa_frames, costs);
        engine.register_vm(vm);
        Self {
            vm,
            vmas: VmaSet::new(HUGE_PAGE_SIZE),
            engine,
            touched_vmas: HashSet::new(),
        }
    }

    /// Attaches an observability recorder; daemon promotions and
    /// demotions of this guest are traced through it.
    pub fn set_recorder(&mut self, rec: gemini_obs::Recorder) {
        self.engine.set_recorder(rec);
    }

    /// Attaches a span profiler; this guest's daemon scans and
    /// promotion/demotion execution record phase spans through it.
    pub fn set_profiler(&mut self, prof: gemini_obs::Profiler) {
        self.engine.set_profiler(prof);
    }

    /// The process page table (GVA frame → GPA frame).
    pub fn table(&self) -> &AddressSpace {
        self.engine
            .table(self.vm)
            .expect("guest VM is registered at construction")
    }

    /// Mutable access to the process page table (tests, targeted state
    /// setup).
    pub fn table_mut(&mut self) -> &mut AddressSpace {
        self.engine
            .table_mut(self.vm)
            .expect("guest VM is registered at construction")
    }

    /// The guest physical allocator (GPA frames).
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.engine.buddy
    }

    /// Mutable access to the guest physical allocator (fragmentation
    /// injection, compaction).
    pub fn buddy_mut(&mut self) -> &mut BuddyAllocator {
        &mut self.engine.buddy
    }

    /// Maps a new VMA of `len` bytes.
    pub fn mmap(&mut self, len: u64) -> Result<Vma, SimError> {
        self.vmas.mmap(len)
    }

    /// Translates a GVA frame, if mapped.
    pub fn translate(&self, gva_frame: u64) -> Option<Translation> {
        self.table().translate(gva_frame)
    }

    /// Records a sampled access for daemon heuristics.
    pub fn record_touch(&mut self, gva_frame: u64) {
        self.engine.record_touch(self.vm, gva_frame);
    }

    /// Handles a demand fault at `gva_frame` under `policy`.
    pub fn handle_fault(
        &mut self,
        gva_frame: u64,
        policy: &mut dyn HugePolicy,
    ) -> Result<(FaultOutcome, Effects), SimError> {
        let gva = Gva::from_frame(gva_frame);
        let vma = self.vmas.find(gva).ok_or(SimError::NoVma(gva))?.clone();
        let site = FaultSite {
            vma: Some(&vma),
            first_touch_in_vma: !self.touched_vmas.contains(&vma.id),
        };
        let (outcome, fx) = self.engine.fault(self.vm, gva_frame, site, policy)?;
        self.touched_vmas.insert(vma.id);
        Ok((outcome, fx))
    }

    /// Runs one daemon pass of `policy`, executing the promotions it
    /// requests.
    pub fn run_daemon(&mut self, policy: &mut dyn HugePolicy, now: Cycles, vcpus: u32) -> Effects {
        self.engine
            .run_daemon(self.vm, policy, now, vcpus)
            .expect("guest VM is registered at construction")
    }

    /// Demotes (splits) one huge mapping.
    pub fn demote(&mut self, region: u64, vcpus: u32) -> Result<Effects, SimError> {
        self.engine.demote(self.vm, region, vcpus)
    }

    /// Unmaps a VMA, freeing its guest-physical memory.
    ///
    /// Freed huge pages are first offered to the policy (Gemini's huge
    /// bucket hooks here); guest-physical memory returns to the guest
    /// buddy, while host-side EPT backing is deliberately *not* touched —
    /// the paper's reused-VM scenario depends on the host keeping the
    /// memory assigned to the VM.
    pub fn munmap(
        &mut self,
        id: VmaId,
        policy: &mut dyn HugePolicy,
        now: Cycles,
    ) -> Result<Effects, SimError> {
        let vma = self.vmas.munmap(id)?;
        let start_region = vma.start_frame() >> HUGE_PAGE_ORDER;
        let end_region =
            (vma.start_frame() + vma.pages() + PAGES_PER_HUGE_PAGE - 1) >> HUGE_PAGE_ORDER;
        let parts = self.engine.parts_mut(self.vm)?;
        let mut fx = Effects::cost(parts.costs.remap_fixed);
        fx.shootdowns = 1;
        for region in start_region..end_region {
            let mut any = false;
            if parts.table.huge_leaf(region).is_some() {
                let pa_huge = parts.table.unmap_huge(region)?;
                if !policy.intercept_huge_free(pa_huge, now) {
                    parts
                        .buddy
                        .free(pa_huge << HUGE_PAGE_ORDER, HUGE_PAGE_ORDER)?;
                }
                any = true;
            } else {
                for (va, pa) in parts.table.iter_base_in(region) {
                    parts.table.unmap_base(va)?;
                    parts.buddy.free(pa, 0)?;
                    any = true;
                }
            }
            if any {
                fx.gva_regions_invalidated.push(region);
                policy.on_region_unmapped(region);
                parts.touches.clear_region(region);
            }
        }
        self.touched_vmas.remove(&vma.id);
        Ok(fx)
    }

    /// The guest-level fragmentation index at huge-page order.
    pub fn fragmentation_index(&self) -> f64 {
        self.engine.fragmentation_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostModel;
    use crate::policy::{BasePagesOnly, FaultCtx, FaultDecision, LayerOps};
    use gemini_sim_core::page::PageSize;

    /// A policy that always asks for huge mappings.
    struct AlwaysHuge;
    impl HugePolicy for AlwaysHuge {
        fn name(&self) -> &'static str {
            "AlwaysHuge"
        }
        fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
            FaultDecision::Huge
        }
    }

    fn guest() -> GuestMm {
        GuestMm::new(VmId(1), 8192, CostModel::default())
    }

    #[test]
    fn fault_maps_base_page_in_vma() {
        let mut g = guest();
        let mut p = BasePagesOnly;
        let vma = g.mmap(16 * 4096).unwrap();
        let f = vma.start_frame();
        let (out, fx) = g.handle_fault(f, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Base);
        assert!(fx.cycles > Cycles::ZERO);
        assert!(g.translate(f).is_some());
        // Double fault on the same frame is a bug.
        assert!(g.handle_fault(f, &mut p).is_err());
        // Fault outside any VMA is a segfault.
        assert!(matches!(g.handle_fault(0, &mut p), Err(SimError::NoVma(_))));
    }

    #[test]
    fn huge_fault_covers_region_and_respects_vma_bounds() {
        let mut g = guest();
        let mut p = AlwaysHuge;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let f = vma.start_frame() + 5;
        let (out, _) = g.handle_fault(f, &mut p).unwrap();
        assert_eq!(out.size, PageSize::Huge);
        // All 512 frames are now translated.
        assert!(g.translate(vma.start_frame()).is_some());
        assert!(g.translate(vma.start_frame() + 511).is_some());
        // A short VMA cannot take a huge mapping.
        let small = g.mmap(4096).unwrap();
        let (out2, _) = g.handle_fault(small.start_frame(), &mut p).unwrap();
        assert_eq!(out2.size, PageSize::Base);
    }

    #[test]
    fn partially_populated_region_cannot_go_huge() {
        let mut g = guest();
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        let mut base = BasePagesOnly;
        g.handle_fault(vma.start_frame(), &mut base).unwrap();
        let mut huge = AlwaysHuge;
        let (out, _) = g.handle_fault(vma.start_frame() + 1, &mut huge).unwrap();
        assert_eq!(out.size, PageSize::Base);
    }

    #[test]
    fn munmap_frees_everything_and_invalidates() {
        let mut g = guest();
        let mut p = AlwaysHuge;
        let vma = g.mmap(2 * HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut p).unwrap();
        g.handle_fault(vma.start_frame() + 512, &mut p).unwrap();
        let free_before = g.buddy().free_frames();
        let fx = g.munmap(vma.id, &mut p, Cycles::ZERO).unwrap();
        assert_eq!(g.buddy().free_frames(), free_before + 1024);
        assert_eq!(fx.gva_regions_invalidated.len(), 2);
        assert_eq!(g.table().huge_mapped(), 0);
        g.buddy().check_invariants().unwrap();
        g.table().check_invariants().unwrap();
    }

    #[test]
    fn munmap_respects_bucket_interception() {
        /// Intercepts every freed huge page.
        struct Bucket(Vec<u64>);
        impl HugePolicy for Bucket {
            fn name(&self) -> &'static str {
                "bucket"
            }
            fn fault_decision(&mut self, _: &FaultCtx<'_>) -> FaultDecision {
                FaultDecision::Huge
            }
            fn intercept_huge_free(&mut self, pa: u64, _now: Cycles) -> bool {
                self.0.push(pa);
                true
            }
        }
        let mut g = guest();
        let mut p = Bucket(Vec::new());
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut p).unwrap();
        let used_before = g.buddy().used_frames();
        g.munmap(vma.id, &mut p, Cycles::ZERO).unwrap();
        // The huge page's frames did NOT return to the buddy.
        assert_eq!(g.buddy().used_frames(), used_before);
        assert_eq!(p.0.len(), 1);
    }

    #[test]
    fn daemon_runs_policy_promotions() {
        /// Promotes every populated region by copy.
        struct Collapse;
        impl HugePolicy for Collapse {
            fn name(&self) -> &'static str {
                "collapse"
            }
            fn fault_decision(&mut self, _: &FaultCtx<'_>) -> FaultDecision {
                FaultDecision::Base
            }
            fn daemon(&mut self, ops: &mut LayerOps<'_>) -> Vec<crate::policy::PromotionOp> {
                ops.table
                    .iter_regions()
                    .filter(|&(_, huge)| !huge)
                    .map(|(r, _)| {
                        crate::policy::PromotionOp::new(r, crate::policy::PromotionKind::Copy)
                    })
                    .collect()
            }
        }
        let mut g = guest();
        let mut p = Collapse;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        for i in 0..40 {
            g.handle_fault(vma.start_frame() + i, &mut p).unwrap();
        }
        let fx = g.run_daemon(&mut p, Cycles::ZERO, 1);
        assert_eq!(g.table().huge_mapped(), 1);
        assert_eq!(fx.pages_copied, 40);
        assert_eq!(fx.shootdowns, 1);
    }

    #[test]
    fn touch_recording_feeds_daemon_view() {
        let mut g = guest();
        g.record_touch(100 * 512);
        g.record_touch(100 * 512 + 1);
        assert_eq!(g.engine.touches(g.vm).unwrap().get(100), 2);
    }

    #[test]
    fn demote_splits_huge_mapping() {
        let mut g = guest();
        let mut p = AlwaysHuge;
        let vma = g.mmap(HUGE_PAGE_SIZE).unwrap();
        g.handle_fault(vma.start_frame(), &mut p).unwrap();
        let region = vma.start_frame() >> HUGE_PAGE_ORDER;
        let fx = g.demote(region, 1).unwrap();
        assert_eq!(g.table().huge_mapped(), 0);
        assert_eq!(g.table().base_mapped(), 512);
        assert_eq!(fx.gva_regions_invalidated, vec![region]);
    }
}

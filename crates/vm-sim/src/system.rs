//! The systems under comparison (paper §2.3 and §6.1), as a declarative
//! scenario registry.
//!
//! Every compared system is one [`ScenarioSpec`] data entry in
//! [`REGISTRY`]: a display label, a guest-policy constructor, a
//! host-policy constructor, an optional Gemini configuration tweak, and
//! two membership flags (main evaluation, alignment tables). The
//! [`SystemKind`] enum remains the stable machine-readable id, but its
//! `evaluated()` / `tabulated()` / `label()` surfaces are *derived* from
//! the registry, so the three can never drift out of sync. Adding a new
//! system — or a new (guest, host) pairing — is a one-entry change; the
//! `Machine` consumes any [`ScenarioSpec`] directly via
//! `Machine::from_scenario`.

use gemini::policy::GeminiConfig;
use gemini::{GeminiPolicy, GeminiRuntime, GeminiShared};
use gemini_mm::{HugePolicy, LayerKind};
use gemini_policies::{build, PolicyKind};

/// One of the compared system configurations: a (guest policy, host
/// policy) pair, plus Gemini's cross-layer runtime where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Base pages at both layers.
    HostBVmB,
    /// Guest huge pages over host base pages (every guest huge page
    /// mis-aligned; the paper's footnote-1 variant).
    HostBVmH,
    /// Host huge pages under guest base pages — the paper's
    /// `Misalignment` scenario.
    HostHVmB,
    /// Static huge pages at both layers (microbenchmark's aligned
    /// configuration).
    HostHVmH,
    /// Linux THP at both layers, uncoordinated.
    Thp,
    /// CA-paging (software component) at both layers.
    CaPaging,
    /// Translation-ranger at both layers.
    Ranger,
    /// HawkEye at both layers.
    HawkEye,
    /// Ingens at both layers.
    Ingens,
    /// Gemini (this paper).
    Gemini,
    /// Ablation: Gemini without the huge bucket (EMA/HB only, Fig. 16).
    GeminiNoBucket,
    /// Ablation: Gemini with booking/EMA disabled (bucket only, Fig. 16).
    GeminiBucketOnly,
}

/// How one layer's [`HugePolicy`] is constructed for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyCtor {
    /// A fixed policy from the `gemini-policies` catalogue.
    Fixed(PolicyKind),
    /// HawkEye with its deduplicator keyed to the running workload's
    /// zero-page profile (guest layer only; the host side cannot see
    /// workload contents and uses `Fixed(HawkEye)`).
    HawkEyeZeroAware,
    /// Gemini's coordinated policy, wired to the machine's shared
    /// cross-layer state.
    Gemini,
}

/// A declarative description of one system under test.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Display label matching the paper's figures.
    pub label: &'static str,
    /// Guest-layer policy constructor (one instance per VM).
    pub guest: PolicyCtor,
    /// Host-layer policy constructor (one instance, shared by all VMs).
    pub host: PolicyCtor,
    /// For Gemini variants: a tweak applied to the default
    /// [`GeminiConfig`] (ablations flip feature flags here). `None`
    /// marks a non-Gemini system with no cross-layer runtime.
    pub gemini: Option<fn(&mut GeminiConfig)>,
    /// Member of the main evaluation (the paper's eight compared
    /// systems).
    pub evaluated: bool,
    /// Member of the well-aligned-rate tables (Tables 1, 3, 4).
    pub tabulated: bool,
    /// Deterministic dispatch cost hint for LPT grid scheduling:
    /// roughly the system's demo-scale fig. 3 cell wall time in
    /// milliseconds, re-measured when a PR shifts the balance. Only the
    /// relative order matters — hints steer which pending cell a worker
    /// takes first and never influence simulated results, so a stale
    /// hint costs wall time, not correctness.
    pub cost_hint: u64,
}

/// Gemini ablation: disable the huge bucket (EMA/HB only, Fig. 16).
fn cfg_no_bucket(cfg: &mut GeminiConfig) {
    cfg.enable_bucket = false;
}

/// Gemini ablation: disable booking/EMA (bucket only, Fig. 16).
fn cfg_bucket_only(cfg: &mut GeminiConfig) {
    cfg.enable_booking = false;
    cfg.enable_promoter = false;
}

/// Identity tweak: the full Gemini configuration.
fn cfg_default(_cfg: &mut GeminiConfig) {}

/// The scenario registry: every compared system as one data entry.
///
/// Registry order is presentation order — `evaluated()` and
/// `tabulated()` are the order-preserving filters of the membership
/// flags, which reproduces the paper's figure and table layouts.
pub const REGISTRY: &[(SystemKind, ScenarioSpec)] = &[
    (
        SystemKind::HostBVmB,
        ScenarioSpec {
            label: "Host-B-VM-B",
            guest: PolicyCtor::Fixed(PolicyKind::Base),
            host: PolicyCtor::Fixed(PolicyKind::Base),
            gemini: None,
            evaluated: true,
            tabulated: false,
            cost_hint: 324,
        },
    ),
    (
        SystemKind::HostHVmB,
        ScenarioSpec {
            label: "Misalignment",
            guest: PolicyCtor::Fixed(PolicyKind::Base),
            host: PolicyCtor::Fixed(PolicyKind::HugeAlways),
            gemini: None,
            evaluated: true,
            tabulated: false,
            cost_hint: 321,
        },
    ),
    (
        SystemKind::HostBVmH,
        ScenarioSpec {
            label: "Host-B-VM-H",
            guest: PolicyCtor::Fixed(PolicyKind::HugeAlways),
            host: PolicyCtor::Fixed(PolicyKind::Base),
            gemini: None,
            evaluated: false,
            tabulated: false,
            cost_hint: 300,
        },
    ),
    (
        SystemKind::HostHVmH,
        ScenarioSpec {
            label: "Host-H-VM-H",
            guest: PolicyCtor::Fixed(PolicyKind::HugeAlways),
            host: PolicyCtor::Fixed(PolicyKind::HugeAlways),
            gemini: None,
            evaluated: false,
            tabulated: false,
            cost_hint: 300,
        },
    ),
    (
        SystemKind::Thp,
        ScenarioSpec {
            label: "THP",
            guest: PolicyCtor::Fixed(PolicyKind::Thp),
            host: PolicyCtor::Fixed(PolicyKind::Thp),
            gemini: None,
            evaluated: true,
            tabulated: true,
            cost_hint: 282,
        },
    ),
    (
        SystemKind::CaPaging,
        ScenarioSpec {
            label: "CA-paging",
            guest: PolicyCtor::Fixed(PolicyKind::CaPaging),
            host: PolicyCtor::Fixed(PolicyKind::CaPaging),
            gemini: None,
            evaluated: true,
            tabulated: true,
            cost_hint: 300,
        },
    ),
    (
        SystemKind::Ranger,
        ScenarioSpec {
            label: "Trans-ranger",
            guest: PolicyCtor::Fixed(PolicyKind::Ranger),
            host: PolicyCtor::Fixed(PolicyKind::Ranger),
            gemini: None,
            evaluated: true,
            tabulated: true,
            cost_hint: 310,
        },
    ),
    (
        SystemKind::HawkEye,
        ScenarioSpec {
            label: "HawkEye",
            guest: PolicyCtor::HawkEyeZeroAware,
            host: PolicyCtor::Fixed(PolicyKind::HawkEye { zero_heavy: false }),
            gemini: None,
            evaluated: true,
            tabulated: true,
            cost_hint: 269,
        },
    ),
    (
        SystemKind::Ingens,
        ScenarioSpec {
            label: "Ingens",
            guest: PolicyCtor::Fixed(PolicyKind::Ingens),
            host: PolicyCtor::Fixed(PolicyKind::Ingens),
            gemini: None,
            evaluated: true,
            tabulated: true,
            cost_hint: 267,
        },
    ),
    (
        SystemKind::Gemini,
        ScenarioSpec {
            label: "GEMINI",
            guest: PolicyCtor::Gemini,
            host: PolicyCtor::Gemini,
            gemini: Some(cfg_default),
            evaluated: true,
            tabulated: true,
            cost_hint: 277,
        },
    ),
    (
        SystemKind::GeminiNoBucket,
        ScenarioSpec {
            label: "GEMINI-EMA/HB",
            guest: PolicyCtor::Gemini,
            host: PolicyCtor::Gemini,
            gemini: Some(cfg_no_bucket),
            evaluated: false,
            tabulated: false,
            cost_hint: 277,
        },
    ),
    (
        SystemKind::GeminiBucketOnly,
        ScenarioSpec {
            label: "GEMINI-bucket",
            guest: PolicyCtor::Gemini,
            host: PolicyCtor::Gemini,
            gemini: Some(cfg_bucket_only),
            evaluated: false,
            tabulated: false,
            cost_hint: 277,
        },
    ),
];

impl ScenarioSpec {
    /// True for the Gemini variants (they need the cross-layer runtime).
    pub fn is_gemini(&self) -> bool {
        self.gemini.is_some()
    }

    /// The Gemini configuration for this scenario (ablations flip
    /// flags); the default configuration for non-Gemini systems.
    pub fn gemini_config(&self) -> GeminiConfig {
        let mut cfg = GeminiConfig::default();
        if let Some(tweak) = self.gemini {
            tweak(&mut cfg);
        }
        cfg
    }

    /// Builds the guest-layer policy (per VM). `zero_heavy` flags the
    /// running workload for HawkEye's deduplicator.
    pub fn guest_policy(
        &self,
        zero_heavy: bool,
        shared: Option<&GeminiShared>,
    ) -> Box<dyn HugePolicy> {
        self.build_policy(self.guest, LayerKind::Guest, zero_heavy, shared)
    }

    /// Builds the host-layer policy (shared by all VMs).
    pub fn host_policy(&self, shared: Option<&GeminiShared>) -> Box<dyn HugePolicy> {
        self.build_policy(self.host, LayerKind::Host, false, shared)
    }

    /// Builds the cross-layer runtime for Gemini variants.
    pub fn runtime(&self, shared: &GeminiShared) -> Option<GeminiRuntime> {
        self.is_gemini().then(|| GeminiRuntime::new(shared.clone()))
    }

    fn build_policy(
        &self,
        ctor: PolicyCtor,
        layer: LayerKind,
        zero_heavy: bool,
        shared: Option<&GeminiShared>,
    ) -> Box<dyn HugePolicy> {
        match ctor {
            PolicyCtor::Fixed(kind) => build(kind),
            PolicyCtor::HawkEyeZeroAware => build(PolicyKind::HawkEye { zero_heavy }),
            PolicyCtor::Gemini => {
                let shared = shared.expect("Gemini systems need shared state").clone();
                Box::new(GeminiPolicy::new(layer, shared, self.gemini_config()))
            }
        }
    }
}

impl SystemKind {
    /// This system's registry entry.
    pub fn spec(self) -> &'static ScenarioSpec {
        REGISTRY
            .iter()
            .find(|(kind, _)| *kind == self)
            .map(|(_, spec)| spec)
            .expect("every SystemKind has a registry entry")
    }

    /// Looks a system up by its display label (case-insensitive).
    pub fn by_label(label: &str) -> Option<SystemKind> {
        REGISTRY
            .iter()
            .find(|(_, spec)| spec.label.eq_ignore_ascii_case(label))
            .map(|(kind, _)| *kind)
    }

    /// The eight systems of the main evaluation, in the paper's order
    /// (derived from the registry's `evaluated` flags).
    pub fn evaluated() -> Vec<SystemKind> {
        REGISTRY
            .iter()
            .filter(|(_, spec)| spec.evaluated)
            .map(|(kind, _)| *kind)
            .collect()
    }

    /// The six systems whose well-aligned rates the paper tabulates
    /// (Tables 1, 3, 4; derived from the registry's `tabulated` flags).
    pub fn tabulated() -> Vec<SystemKind> {
        REGISTRY
            .iter()
            .filter(|(_, spec)| spec.tabulated)
            .map(|(kind, _)| *kind)
            .collect()
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        self.spec().label
    }

    /// True for the Gemini variants (they need the cross-layer runtime).
    pub fn is_gemini(self) -> bool {
        self.spec().is_gemini()
    }

    /// Builds the guest-layer policy (per VM). `zero_heavy` flags the
    /// running workload for HawkEye's deduplicator.
    pub fn guest_policy(
        self,
        zero_heavy: bool,
        shared: Option<&GeminiShared>,
    ) -> Box<dyn HugePolicy> {
        self.spec().guest_policy(zero_heavy, shared)
    }

    /// Builds the host-layer policy (shared by all VMs).
    pub fn host_policy(self, shared: Option<&GeminiShared>) -> Box<dyn HugePolicy> {
        self.spec().host_policy(shared)
    }

    /// The Gemini configuration for this variant (ablations flip flags).
    pub fn gemini_config(self) -> GeminiConfig {
        self.spec().gemini_config()
    }

    /// Deterministic LPT dispatch cost hint (see
    /// [`ScenarioSpec::cost_hint`]).
    pub fn cost_hint(self) -> u64 {
        self.spec().cost_hint
    }

    /// Builds the cross-layer runtime for Gemini variants.
    pub fn runtime(self, shared: &GeminiShared) -> Option<GeminiRuntime> {
        self.spec().runtime(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini::shared::new_shared;

    #[test]
    fn evaluated_set_matches_paper() {
        let labels: Vec<&str> = SystemKind::evaluated().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Host-B-VM-B",
                "Misalignment",
                "THP",
                "CA-paging",
                "Trans-ranger",
                "HawkEye",
                "Ingens",
                "GEMINI"
            ]
        );
    }

    #[test]
    fn policies_build_for_every_system() {
        let shared = new_shared();
        for s in SystemKind::evaluated() {
            let arg = s.is_gemini().then_some(&shared);
            let g = s.guest_policy(false, arg);
            let h = s.host_policy(arg);
            assert!(!g.name().is_empty());
            assert!(!h.name().is_empty());
            assert_eq!(s.runtime(&shared).is_some(), s.is_gemini());
        }
    }

    #[test]
    fn ablations_flip_config_flags() {
        assert!(!SystemKind::GeminiNoBucket.gemini_config().enable_bucket);
        assert!(!SystemKind::GeminiBucketOnly.gemini_config().enable_booking);
        assert!(SystemKind::Gemini.gemini_config().enable_bucket);
    }

    #[test]
    fn registry_covers_every_kind_exactly_once_with_unique_labels() {
        for (kind, spec) in REGISTRY {
            assert_eq!(kind.spec().label, spec.label);
            assert_eq!(SystemKind::by_label(spec.label), Some(*kind));
            assert_eq!(
                REGISTRY.iter().filter(|(k, _)| k == kind).count(),
                1,
                "duplicate registry entry for {kind:?}"
            );
            assert_eq!(
                REGISTRY
                    .iter()
                    .filter(|(_, s)| s.label == spec.label)
                    .count(),
                1,
                "duplicate label {:?}",
                spec.label
            );
        }
        assert_eq!(SystemKind::evaluated().len(), 8);
        assert_eq!(SystemKind::tabulated().len(), 6);
    }

    #[test]
    fn lookup_by_label_is_case_insensitive() {
        assert_eq!(SystemKind::by_label("gemini"), Some(SystemKind::Gemini));
        assert_eq!(SystemKind::by_label("thp"), Some(SystemKind::Thp));
        assert_eq!(
            SystemKind::by_label("misalignment"),
            Some(SystemKind::HostHVmB)
        );
        assert_eq!(SystemKind::by_label("no-such-system"), None);
    }
}

//! A binary buddy page-frame allocator modeled on Linux's `page_alloc`.
//!
//! Free memory is grouped into order-*x* free lists, where an order-*x*
//! block holds 2^x contiguous, 2^x-aligned base frames. Allocation splits
//! larger blocks; freeing eagerly merges buddies back together, so a fully
//! free, naturally aligned 2^x range is always represented by a single block
//! of order ≥ x — an invariant this crate's targeted allocation relies on
//! and the property tests check.
//!
//! Beyond the classic interface, the allocator supports what Gemini's
//! mechanisms need:
//!
//! - [`BuddyAllocator::alloc_at`] — targeted allocation of a specific
//!   aligned block, used by the enhanced memory allocator (EMA) to place a
//!   page at `GVA - GuestOffset`, and by huge booking to reserve the region
//!   under a mis-aligned huge page;
//! - a persistent **free-run index** — maximal free contiguous runs kept
//!   in an address-ordered map with a size histogram, maintained
//!   incrementally by every alloc/free. Placement queries
//!   ([`BuddyAllocator::first_run_fitting`],
//!   [`BuddyAllocator::first_congruent_run`],
//!   [`BuddyAllocator::largest_free_run`]) answer off the index in
//!   O(log runs + answers) instead of rescanning memory, feeding the
//!   Gemini contiguity list and CA-paging's offset establishment;
//! - [`BuddyAllocator::free_area_counts`] — per-order free-block counts for
//!   the fragmentation index (FMFI) that Ingens and Algorithm 1 consume.
//!
//! All addresses here are *frame numbers* (base-page indices); callers
//! convert to/from [`gemini_sim_core::Gpa`]/[`gemini_sim_core::Hpa`].
//!
//! # Examples
//!
//! ```
//! use gemini_buddy::BuddyAllocator;
//! use gemini_sim_core::HUGE_PAGE_ORDER;
//!
//! let mut buddy = BuddyAllocator::new(4096);
//! // A 2 MiB huge page is an aligned order-9 block.
//! let huge = buddy.alloc(HUGE_PAGE_ORDER)?;
//! assert_eq!(huge % 512, 0);
//! // Targeted allocation: reserve the specific region a booking needs.
//! buddy.alloc_at(1024, HUGE_PAGE_ORDER)?;
//! buddy.free(huge, HUGE_PAGE_ORDER)?;
//! buddy.free(1024, HUGE_PAGE_ORDER)?;
//! assert_eq!(buddy.free_frames(), 4096);
//! # Ok::<(), gemini_sim_core::SimError>(())
//! ```

use gemini_sim_core::{FreeAreaCounts, SimError, HUGE_PAGE_ORDER, PAGES_PER_HUGE_PAGE};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Largest allocatable order (inclusive): order-10 blocks are 4 MiB, the
/// Linux `MAX_ORDER` limit the paper cites when explaining why the stock
/// buddy allocator cannot hand out arbitrarily large contiguous regions.
pub const MAX_ORDER: u32 = 10;

/// Marks a frame that is not the start of a free block in
/// [`BuddyAllocator::order_of`].
const NO_BLOCK: u8 = u8::MAX;

/// A binary buddy allocator over a contiguous range of page frames.
///
/// Free blocks are tracked in one flat byte array indexed by frame:
/// `order_of[f]` is the order of the free block starting at `f`, or a
/// `NO_BLOCK` sentinel. Because a block of order `o` can only start at an
/// `o`-aligned frame, "which free block contains frame `f`" is answered by
/// probing the 11 aligned predecessors of `f` — no tree walk — and the
/// buddy-merge step in [`BuddyAllocator::free`] is a single array read.
/// Address-ordered allocation keeps a per-order minimum-start hint that
/// insertions lower and scans advance, so finding the lowest free block of
/// an order amortizes to a moving cursor.
/// On top of the block storage, the allocator keeps a persistent **free-run
/// index**: the maximal runs of abutting free frames, held in an
/// address-ordered map (`start → len`) mirrored by a size-ordered set
/// (`(len, start)`). Every `alloc`/`alloc_at`/`free` updates the index at
/// the *net-effect* level — internal block splits and buddy merges never
/// move a run boundary, so each operation is one range carve or one
/// adjacency merge, O(log runs) amortized. Run queries
/// ([`BuddyAllocator::first_run_fitting`],
/// [`BuddyAllocator::first_congruent_run`],
/// [`BuddyAllocator::largest_free_run`]) read the index instead of
/// rescanning `order_of`, which turns every run-consuming policy pass from
/// O(frames) into O(log runs + answers).
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Per-frame free-block-start marker (see type docs).
    order_of: Vec<u8>,
    /// Number of free blocks per order `0..=MAX_ORDER`.
    counts: Vec<u64>,
    /// Lower bound on the lowest start of a free block per order; never
    /// above the true minimum (insertions lower it, removals leave it).
    min_start: Vec<u64>,
    /// Total frames managed.
    total_frames: u64,
    /// Currently free frames.
    free_frames: u64,
    /// Free-run index, address-ordered: `start → len` of every maximal
    /// free run. The single source the run iterators and queries read.
    runs_by_addr: BTreeMap<u64, u64>,
    /// Free-run index, size-ordered: histogram `len → number of runs of
    /// that length`, giving O(log lens) largest-run and fit guards. Keyed
    /// by length only — fragmented memory has many runs but few distinct
    /// lengths, so this tree stays far smaller than `runs_by_addr`.
    runs_by_size: BTreeMap<u64, u64>,
    /// Work counter: runs examined by index queries since the last
    /// [`BuddyAllocator::take_work_counters`]. `Cell` because queries
    /// take `&self`; the allocator is `Send` (moved whole between
    /// worker threads), never shared across threads.
    run_probes: Cell<u64>,
    /// Work counter: run-map mutations (inserts + removes) since the
    /// last [`BuddyAllocator::take_work_counters`].
    index_updates: Cell<u64>,
    /// False only inside [`BuddyAllocator::bulk_update`], where per-op
    /// index maintenance is suspended and the index rebuilt once at the
    /// end. Queries must not run while false.
    index_live: bool,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `[0, num_frames)`, all free.
    pub fn new(num_frames: u64) -> Self {
        let mut alloc = Self {
            order_of: vec![NO_BLOCK; num_frames as usize],
            counts: vec![0; (MAX_ORDER + 1) as usize],
            min_start: vec![0; (MAX_ORDER + 1) as usize],
            total_frames: num_frames,
            free_frames: 0,
            runs_by_addr: BTreeMap::new(),
            runs_by_size: BTreeMap::new(),
            run_probes: Cell::new(0),
            index_updates: Cell::new(0),
            index_live: true,
        };
        // Carve the range greedily into maximal aligned blocks.
        let mut frame = 0u64;
        while frame < num_frames {
            let align_order = if frame == 0 {
                MAX_ORDER
            } else {
                frame.trailing_zeros().min(MAX_ORDER)
            };
            let mut order = align_order;
            while frame + (1 << order) > num_frames {
                order -= 1;
            }
            alloc.insert_free(frame, order);
            frame += 1 << order;
        }
        alloc.free_frames = num_frames;
        // The carved blocks all abut: the whole range is one free run.
        if num_frames > 0 {
            alloc.index_insert(0, num_frames);
        }
        alloc
    }

    /// Total number of frames managed.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Number of currently allocated frames.
    pub fn used_frames(&self) -> u64 {
        self.total_frames - self.free_frames
    }

    /// Allocates a block of `order`, returning its start frame.
    ///
    /// Splits the smallest sufficient block at the lowest address, like
    /// Linux's allocator under the "address-ordered" heuristic.
    pub fn alloc(&mut self, order: u32) -> Result<u64, SimError> {
        if order > MAX_ORDER {
            return Err(SimError::OutOfMemory { order });
        }
        let mut found = None;
        for o in order..=MAX_ORDER {
            if self.counts[o as usize] > 0 {
                found = Some((self.lowest_block_of_order(o), o));
                break;
            }
        }
        let (start, mut o) = found.ok_or(SimError::OutOfMemory { order })?;
        self.remove_free(start, o);
        // Split down, freeing the upper halves.
        while o > order {
            o -= 1;
            self.insert_free(start + (1 << o), o);
        }
        self.free_frames -= 1 << order;
        // Net effect on runs: exactly the allocated range left them.
        self.index_allocate_range(start, 1 << order);
        Ok(start)
    }

    /// Allocates every free frame as a single frame, returning them in the
    /// exact order repeated [`BuddyAllocator::alloc`]`(0)` calls would:
    /// free blocks sorted by `(order, start)`, each block's frames
    /// ascending. `alloc` always takes the lowest block of the smallest
    /// non-empty order, and the remainders of a split are smaller than
    /// every other block — so a block, once started, drains completely
    /// (ascending) before any other is touched, and blocks begin in
    /// `(order, start)` order. One O(frames) pass replaces O(frames)
    /// `alloc` calls with their per-call split bookkeeping.
    ///
    /// Only callable inside [`BuddyAllocator::bulk_update`] (the
    /// fragmenter's whole-memory grab), where index maintenance is
    /// suspended; debug builds assert this.
    pub fn drain_singles(&mut self) -> Vec<u64> {
        debug_assert!(!self.index_live, "drain_singles outside bulk_update");
        let mut blocks: Vec<(u32, u64)> = Vec::new();
        for start in 0..self.total_frames {
            let marker = self.order_of[start as usize];
            if marker != NO_BLOCK {
                blocks.push((marker as u32, start));
            }
        }
        blocks.sort_unstable();
        let mut out = Vec::with_capacity(self.free_frames as usize);
        for &(order, start) in &blocks {
            self.order_of[start as usize] = NO_BLOCK;
            self.counts[order as usize] -= 1;
            out.extend(start..start + (1u64 << order));
        }
        self.free_frames = 0;
        out
    }

    /// Frees `frames` (single frames, any order, no duplicates) in one
    /// pass, producing the same end state as freeing them one at a time.
    ///
    /// Eager merging makes the block decomposition of a given free-frame
    /// set unique: two same-order free buddies never coexist, which forces
    /// every free frame into the largest aligned block that is entirely
    /// free. The order frees happen in therefore cannot matter, and the
    /// greedy carve used by [`BuddyAllocator::new`] reconstructs exactly
    /// that decomposition run by run — without the per-free merge chain
    /// and overlap scan.
    ///
    /// Only callable inside [`BuddyAllocator::bulk_update`] (the
    /// fragmenter's release of unpinned frames), where index maintenance
    /// is suspended; debug builds assert this.
    pub fn free_singles(&mut self, frames: &[u64]) -> Result<(), SimError> {
        debug_assert!(!self.index_live, "free_singles outside bulk_update");
        // Expand current free blocks plus the new singles into a bitmap.
        let n = self.total_frames as usize;
        let mut free = vec![false; n];
        for start in 0..n {
            let marker = self.order_of[start];
            if marker != NO_BLOCK {
                for f in free[start..start + (1usize << marker)].iter_mut() {
                    *f = true;
                }
            }
        }
        for &f in frames {
            if f >= self.total_frames || free[f as usize] {
                return Err(SimError::BadFree(gemini_sim_core::Hpa::from_frame(f)));
            }
            free[f as usize] = true;
        }
        // Rebuild the canonical decomposition from scratch.
        self.order_of.fill(NO_BLOCK);
        self.counts.fill(0);
        let mut frame = 0usize;
        while frame < n {
            if !free[frame] {
                frame += 1;
                continue;
            }
            let mut end = frame;
            while end < n && free[end] {
                end += 1;
            }
            // Greedy carve of the run into maximal aligned blocks.
            let mut pos = frame as u64;
            while pos < end as u64 {
                let align_order = if pos == 0 {
                    MAX_ORDER
                } else {
                    pos.trailing_zeros().min(MAX_ORDER)
                };
                let mut order = align_order;
                while pos + (1 << order) > end as u64 {
                    order -= 1;
                }
                self.insert_free(pos, order);
                pos += 1 << order;
            }
            frame = end;
        }
        self.free_frames += frames.len() as u64;
        Ok(())
    }

    /// Allocates the specific block `[start, start + 2^order)`.
    ///
    /// Fails with [`SimError::Unaligned`] if `start` is not order-aligned,
    /// [`SimError::OutOfRange`] if the block exceeds the managed range, and
    /// [`SimError::RangeBusy`] if any frame in the block is allocated.
    pub fn alloc_at(&mut self, start: u64, order: u32) -> Result<(), SimError> {
        if order > MAX_ORDER {
            return Err(SimError::OutOfRange);
        }
        if start & ((1 << order) - 1) != 0 {
            return Err(SimError::Unaligned);
        }
        if start + (1 << order) > self.total_frames {
            return Err(SimError::OutOfRange);
        }
        // Eager merging guarantees a fully free aligned range lives inside
        // a single free block of order >= `order`.
        let (block_start, block_order) = self
            .containing_free_block(start)
            .ok_or(SimError::RangeBusy)?;
        if block_start + (1 << block_order) < start + (1 << order) {
            return Err(SimError::RangeBusy);
        }
        self.remove_free(block_start, block_order);
        // Descend toward the target, freeing the sibling half each split.
        let (mut cur_start, mut cur_order) = (block_start, block_order);
        while cur_order > order {
            cur_order -= 1;
            let half = 1u64 << cur_order;
            if start >= cur_start + half {
                self.insert_free(cur_start, cur_order);
                cur_start += half;
            } else {
                self.insert_free(cur_start + half, cur_order);
            }
        }
        debug_assert_eq!(cur_start, start);
        self.free_frames -= 1 << order;
        self.index_allocate_range(start, 1 << order);
        Ok(())
    }

    /// Frees the block `[start, start + 2^order)`, merging buddies eagerly.
    ///
    /// Fails with [`SimError::BadFree`] when any frame of the block is
    /// already free (double free) or out of range.
    pub fn free(&mut self, start: u64, order: u32) -> Result<(), SimError> {
        if order > MAX_ORDER
            || start & ((1 << order) - 1) != 0
            || start + (1 << order) > self.total_frames
        {
            return Err(SimError::BadFree(gemini_sim_core::Hpa::from_frame(start)));
        }
        // Detect overlap with an existing free block.
        if self.range_overlaps_free(start, 1 << order) {
            return Err(SimError::BadFree(gemini_sim_core::Hpa::from_frame(start)));
        }
        let (mut cur, mut o) = (start, order);
        while o < MAX_ORDER {
            let buddy = cur ^ (1 << o);
            if buddy + (1 << o) <= self.total_frames && self.order_of[buddy as usize] == o as u8 {
                self.order_of[buddy as usize] = NO_BLOCK;
                self.counts[o as usize] -= 1;
                cur = cur.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.insert_free(cur, o);
        self.free_frames += 1 << order;
        // Buddy merging happened strictly inside already-free ground; the
        // net effect on runs is that the freed range joined them.
        self.index_free_range(start, 1 << order);
        Ok(())
    }

    /// Returns true when every frame of `[start, start + len)` is free.
    pub fn is_range_free(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        if start + len > self.total_frames {
            return false;
        }
        let mut cursor = start;
        // Walk free blocks covering the range.
        while cursor < start + len {
            match self.containing_free_block(cursor) {
                Some((bs, bo)) => cursor = bs + (1 << bo),
                None => return false,
            }
        }
        true
    }

    /// Returns true when frame `frame` is free.
    pub fn is_frame_free(&self, frame: u64) -> bool {
        self.containing_free_block(frame).is_some()
    }

    /// Per-order free block counts, for FMFI computation.
    pub fn free_area_counts(&self) -> FreeAreaCounts {
        FreeAreaCounts::new(&self.counts)
    }

    /// Current fragmentation index at `order` (see [`gemini_sim_core::fmfi`]).
    pub fn fragmentation_index(&self, order: u32) -> f64 {
        gemini_sim_core::fragmentation_index(&self.free_area_counts(), order)
    }

    /// Enumerates maximal runs of free frames as `(start, len)` pairs in
    /// address order, merging adjacent free blocks that are not buddies.
    ///
    /// **Test-only convenience**: materialises the whole index into a
    /// `Vec` for assertions. Production consumers use the lazy
    /// [`BuddyAllocator::free_runs_iter`]/[`BuddyAllocator::free_runs_from`]
    /// or the indexed queries ([`BuddyAllocator::first_run_fitting`],
    /// [`BuddyAllocator::first_congruent_run`]), which touch only the
    /// runs they answer with.
    pub fn free_runs(&self) -> Vec<(u64, u64)> {
        self.free_runs_iter().collect()
    }

    /// Lazy iterator over the maximal free runs in address order, read
    /// straight from the persistent run index — no `order_of` scan, no
    /// `Vec`, so searches that stop at the first fit (next-fit placement)
    /// touch only the runs they examine.
    pub fn free_runs_iter(&self) -> FreeRuns<'_> {
        debug_assert!(self.index_live, "query inside bulk_update");
        FreeRuns {
            inner: self.runs_by_addr.range(..),
        }
    }

    /// Like [`BuddyAllocator::free_runs_iter`], but yields only the maximal
    /// runs whose *start* is `>= frame` — exactly the suffix a next-fit
    /// cursor scan wants. A run that merely straddles `frame` (it began
    /// below it) is excluded, matching
    /// `free_runs().filter(|r| r.0 >= frame)`.
    pub fn free_runs_from(&self, frame: u64) -> FreeRuns<'_> {
        debug_assert!(self.index_live, "query inside bulk_update");
        FreeRuns {
            inner: self.runs_by_addr.range(frame..),
        }
    }

    /// Re-derives the maximal free runs by scanning `order_of` from
    /// scratch — the reference the incremental index is checked against
    /// ([`BuddyAllocator::check_invariants`], property tests). O(frames);
    /// not for production paths.
    pub fn free_runs_rescan(&self) -> Vec<(u64, u64)> {
        let n = self.total_frames;
        let mut runs = Vec::new();
        let mut pos = 0u64;
        while pos < n {
            if self.order_of[pos as usize] == NO_BLOCK {
                pos += 1;
                continue;
            }
            // Accumulate the chain of abutting free blocks.
            let start = pos;
            while pos < n && self.order_of[pos as usize] != NO_BLOCK {
                pos += 1u64 << self.order_of[pos as usize];
            }
            runs.push((start, pos - start));
        }
        runs
    }

    /// Length of the largest maximal free run, in frames. O(log runs)
    /// off the size-ordered index.
    pub fn largest_free_run(&self) -> u64 {
        debug_assert!(self.index_live, "query inside bulk_update");
        self.runs_by_size
            .last_key_value()
            .map(|(&len, _)| len)
            .unwrap_or(0)
    }

    /// First free run with start `>= cursor` holding at least `len`
    /// frames, as `(start, len)`. Next-fit leg of a cursor scan;
    /// rejects in O(log runs) when no run anywhere is long enough.
    pub fn first_run_fitting(&self, cursor: u64, len: u64) -> Option<(u64, u64)> {
        if self.largest_free_run() < len {
            return None;
        }
        for (&start, &rlen) in self.runs_by_addr.range(cursor..) {
            self.run_probes.set(self.run_probes.get() + 1);
            if rlen >= len {
                return Some((start, rlen));
            }
        }
        None
    }

    /// First free run with start `>= cursor` that can place `len` frames
    /// at a position congruent to `in0` modulo the huge page size: the
    /// run `(start, rlen)` fits iff
    /// `congruent_start(start, in0) + len <= start + rlen`.
    ///
    /// This is the core query of contiguity-aware placement (CA-paging's
    /// `establish_offset`, Gemini's contiguity list). Two fast
    /// rejections make the fragmented case O(log runs): no run is `len`
    /// long, or — when the anchor is region-aligned and a whole region
    /// is needed — no free block of huge-page order exists (by eager
    /// merging, a congruent fit of `>= 512` aligned frames *is* such a
    /// block).
    pub fn first_congruent_run(&self, cursor: u64, in0: u64, len: u64) -> Option<(u64, u64)> {
        if !self.congruent_fit_possible(in0, len) {
            return None;
        }
        for (&start, &rlen) in self.runs_by_addr.range(cursor..) {
            self.run_probes.set(self.run_probes.get() + 1);
            if congruent_start(start, in0) + len <= start + rlen {
                return Some((start, rlen));
            }
        }
        None
    }

    /// Wrap-around leg of [`BuddyAllocator::first_congruent_run`]: the
    /// first fitting run whose start is strictly `< below`, scanning from
    /// address zero. After the at-cursor leg missed, any remaining fit
    /// necessarily starts before the cursor, so the two legs together
    /// cover the full wrapped next-fit order.
    pub fn first_congruent_run_below(&self, below: u64, in0: u64, len: u64) -> Option<(u64, u64)> {
        if !self.congruent_fit_possible(in0, len) {
            return None;
        }
        for (&start, &rlen) in self.runs_by_addr.range(..below) {
            self.run_probes.set(self.run_probes.get() + 1);
            if congruent_start(start, in0) + len <= start + rlen {
                return Some((start, rlen));
            }
        }
        None
    }

    /// Number of free runs holding at least `min_len` frames. O(answers)
    /// off the size-ordered index.
    pub fn count_runs_at_least(&self, min_len: u64) -> u64 {
        debug_assert!(self.index_live, "query inside bulk_update");
        self.runs_by_size.range(min_len..).map(|(_, &c)| c).sum()
    }

    /// The `n`-th (0-based) free run in *address order* among those
    /// holding at least `min_len` frames — the indexed replacement for
    /// collecting a filtered `Vec` and subscripting it.
    pub fn nth_run_at_least(&self, min_len: u64, n: u64) -> Option<(u64, u64)> {
        debug_assert!(self.index_live, "query inside bulk_update");
        let mut seen = 0u64;
        for (&start, &rlen) in self.runs_by_addr.iter() {
            self.run_probes.set(self.run_probes.get() + 1);
            if rlen >= min_len {
                if seen == n {
                    return Some((start, rlen));
                }
                seen += 1;
            }
        }
        None
    }

    /// Runs `f` with per-operation index maintenance suspended, then
    /// rebuilds the run index once from an `order_of` rescan.
    ///
    /// For bulk churn — e.g. the fragmenter, which allocates every frame
    /// singly and frees most of them back — per-op maintenance costs
    /// O(ops x log runs) in `BTreeMap` traffic while the net effect is
    /// one O(frames) layout. Suspending and rebuilding makes the setup
    /// cost independent of the number of intermediate operations. The
    /// rebuilt index is identical to what incremental maintenance would
    /// have produced (both equal the rescan), so results are unchanged.
    ///
    /// Queries (`free_runs*`, `first_*`, `largest_free_run`, ...) must
    /// not be called from inside `f`; debug builds assert this.
    pub fn bulk_update<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        self.index_live = false;
        self.runs_by_addr.clear();
        self.runs_by_size.clear();
        let out = f(self);
        for (start, len) in self.free_runs_rescan() {
            self.index_insert(start, len);
        }
        self.index_live = true;
        out
    }

    /// Drains the deterministic work counters accumulated since the last
    /// call, as `(run_probes, index_updates)`. The engine feeds these
    /// into the obs registry after each fault/daemon step.
    pub fn take_work_counters(&self) -> (u64, u64) {
        (self.run_probes.take(), self.index_updates.take())
    }

    /// Runs examined by index queries since the last counter drain.
    pub fn run_probes(&self) -> u64 {
        self.run_probes.get()
    }

    /// Run-map mutations since the last counter drain.
    pub fn index_updates(&self) -> u64 {
        self.index_updates.get()
    }

    /// True when some run could place `len` congruent-to-`in0` frames;
    /// see [`BuddyAllocator::first_congruent_run`] for the reasoning.
    fn congruent_fit_possible(&self, in0: u64, len: u64) -> bool {
        if self.largest_free_run() < len {
            return false;
        }
        // A region-aligned anchor needing a whole region places it on a
        // 512-aligned, fully free range — by eager merging, an order-9
        // free block. No such block, no fit, O(orders) to know.
        if in0 % PAGES_PER_HUGE_PAGE == 0
            && len >= PAGES_PER_HUGE_PAGE
            && !self.has_suitable_block(HUGE_PAGE_ORDER)
        {
            return false;
        }
        true
    }

    /// True when any free block of order `>= order` exists — an O(orders)
    /// check with no allocation. By eager merging this is equivalent to
    /// "some naturally aligned, fully free `2^order` range exists", which
    /// lets callers reject whole-region searches before walking runs.
    pub fn has_suitable_block(&self, order: u32) -> bool {
        self.counts[order.min(MAX_ORDER) as usize..]
            .iter()
            .any(|&c| c > 0)
    }

    /// Count of free blocks of exactly `order`.
    pub fn free_blocks_of_order(&self, order: u32) -> usize {
        self.counts
            .get(order as usize)
            .map(|&c| c as usize)
            .unwrap_or(0)
    }

    /// The free block containing `frame`, if any, as `(start, order)`.
    ///
    /// A block of order `o` can only start at the `2^o`-aligned frame at or
    /// below `frame`, so eleven probes cover every possibility.
    fn containing_free_block(&self, frame: u64) -> Option<(u64, u32)> {
        if frame >= self.total_frames {
            return None;
        }
        for o in 0..=MAX_ORDER {
            let start = frame & !((1u64 << o) - 1);
            if self.order_of[start as usize] == o as u8 {
                return Some((start, o));
            }
        }
        None
    }

    /// The lowest start frame among free blocks of exactly `order`.
    ///
    /// Callers must ensure `counts[order] > 0`. Starts the scan at the
    /// order's min-start hint and advances it past exhausted ground.
    fn lowest_block_of_order(&mut self, order: u32) -> u64 {
        debug_assert!(self.counts[order as usize] > 0);
        let step = 1u64 << order;
        let mut s = self.min_start[order as usize];
        while self.order_of[s as usize] != order as u8 {
            s += step;
        }
        self.min_start[order as usize] = s;
        s
    }

    /// True when `[start, start+len)` intersects any free block.
    fn range_overlaps_free(&self, start: u64, len: u64) -> bool {
        if self.containing_free_block(start).is_some() {
            return true;
        }
        // A block starting exactly at `start` was already caught above, so
        // only longer ranges need the interior scan. `len` is at most
        // `2^MAX_ORDER`, bounding the scan.
        self.order_of[start as usize + 1..(start + len) as usize]
            .iter()
            .any(|&o| o != NO_BLOCK)
    }

    fn insert_free(&mut self, start: u64, order: u32) {
        self.order_of[start as usize] = order as u8;
        self.counts[order as usize] += 1;
        if start < self.min_start[order as usize] {
            self.min_start[order as usize] = start;
        }
    }

    fn remove_free(&mut self, start: u64, order: u32) {
        debug_assert_eq!(self.order_of[start as usize], order as u8);
        self.order_of[start as usize] = NO_BLOCK;
        self.counts[order as usize] -= 1;
    }

    /// Adds run `(start, len)` to both index maps.
    fn index_insert(&mut self, start: u64, len: u64) {
        self.index_updates.set(self.index_updates.get() + 1);
        self.runs_by_addr.insert(start, len);
        self.size_inc(len);
    }

    /// Removes run `(start, len)` from both index maps.
    fn index_remove(&mut self, start: u64, len: u64) {
        self.index_updates.set(self.index_updates.get() + 1);
        let in_addr = self.runs_by_addr.remove(&start) == Some(len);
        debug_assert!(in_addr, "index out of sync at {start}+{len}");
        self.size_dec(len);
    }

    /// Counts one more run of length `len` in the size histogram.
    fn size_inc(&mut self, len: u64) {
        *self.runs_by_size.entry(len).or_insert(0) += 1;
    }

    /// Counts one fewer run of length `len` in the size histogram.
    fn size_dec(&mut self, len: u64) {
        match self.runs_by_size.get_mut(&len) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.runs_by_size.remove(&len);
            }
            None => debug_assert!(false, "size histogram missing length {len}"),
        }
    }

    /// Records an in-place change of one run's length in the size
    /// histogram and the update counter (the address map was already
    /// mutated through `get_mut`/`range_mut`).
    fn size_resize(&mut self, old_len: u64, new_len: u64) {
        self.index_updates.set(self.index_updates.get() + 1);
        self.size_dec(old_len);
        self.size_inc(new_len);
    }

    /// Index update for an allocation: carve `[start, start + len)` out of
    /// the run containing it, leaving up to two remainder runs. The range
    /// was fully free, so exactly one indexed run covers it. When the run
    /// keeps its start (tail or middle carve) the left remainder shrinks
    /// in place; only a head carve moves the key.
    fn index_allocate_range(&mut self, start: u64, len: u64) {
        if !self.index_live {
            return;
        }
        let end = start + len;
        let (run_start, run_len) = {
            let (&run_start, run_len) = self
                .runs_by_addr
                .range_mut(..=start)
                .next_back()
                .expect("allocated range must lie inside an indexed run");
            let old = *run_len;
            debug_assert!(run_start + old >= end);
            if run_start < start {
                // Left remainder keeps the key; shrink it in place.
                *run_len = start - run_start;
            }
            (run_start, old)
        };
        let run_end = run_start + run_len;
        if run_start == start {
            self.index_remove(run_start, run_len);
        } else {
            self.size_resize(run_len, start - run_start);
        }
        if run_end > end {
            self.index_insert(end, run_end - end);
        }
    }

    /// Index update for a free: the range `[start, start + len)` joins the
    /// free runs, merging with the run ending exactly at `start` and/or
    /// the run starting exactly at `start + len`. (A neighbouring free
    /// frame always terminates its run exactly at the boundary, because
    /// the range itself was allocated ground.) A left merge keeps the
    /// predecessor's key and grows it in place — the common case under
    /// sequential frees.
    fn index_free_range(&mut self, start: u64, len: u64) {
        if !self.index_live {
            return;
        }
        let right_len = self.runs_by_addr.get(&(start + len)).copied();
        if let Some(next_len) = right_len {
            self.index_remove(start + len, next_len);
        }
        let add = len + right_len.unwrap_or(0);
        let mut grown: Option<u64> = None;
        if let Some((&prev_start, prev_len)) = self.runs_by_addr.range_mut(..start).next_back() {
            if prev_start + *prev_len == start {
                grown = Some(*prev_len);
                *prev_len += add;
            }
        }
        match grown {
            Some(old_len) => self.size_resize(old_len, old_len + add),
            None => self.index_insert(start, add),
        }
    }

    /// Verifies internal invariants; used by tests.
    ///
    /// Checks that free lists and the block index agree, blocks are aligned
    /// and disjoint, the free-frame count matches, and no two free buddies
    /// coexist unmerged.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        let mut counted = 0u64;
        let mut prev_end = 0u64;
        let mut per_order = vec![0u64; (MAX_ORDER + 1) as usize];
        for (f, &marker) in self.order_of.iter().enumerate() {
            if marker == NO_BLOCK {
                continue;
            }
            let (start, order) = (f as u64, marker as u32);
            if order > MAX_ORDER {
                return Err(SimError::Invariant("free block order out of range"));
            }
            per_order[order as usize] += 1;
            if start & ((1 << order) - 1) != 0 {
                return Err(SimError::Invariant("free block misaligned"));
            }
            if start < prev_end {
                return Err(SimError::Invariant("free blocks overlap"));
            }
            prev_end = start + (1 << order);
            if prev_end > self.total_frames {
                return Err(SimError::Invariant("free block out of range"));
            }
            counted += 1 << order;
            if order < MAX_ORDER {
                let buddy = start ^ (1u64 << order);
                if buddy < self.total_frames && self.order_of[buddy as usize] == order as u8 {
                    return Err(SimError::Invariant("unmerged free buddies"));
                }
            }
        }
        if per_order != self.counts {
            return Err(SimError::Invariant("per-order block counts out of sync"));
        }
        for o in 0..=MAX_ORDER as usize {
            if self.counts[o] > 0 {
                let lowest = self
                    .order_of
                    .iter()
                    .position(|&m| m == o as u8)
                    .expect("count > 0 implies a block exists") as u64;
                if self.min_start[o] > lowest {
                    return Err(SimError::Invariant("min-start hint above true minimum"));
                }
            }
        }
        let listed: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(o, &c)| c << o as u64)
            .sum();
        if counted != self.free_frames || listed != self.free_frames {
            return Err(SimError::Invariant("free frame accounting mismatch"));
        }
        // The incremental run index must equal a fresh rescan and its two
        // maps must mirror each other.
        let rescan = self.free_runs_rescan();
        if self.runs_by_addr.len() != rescan.len()
            || !rescan
                .iter()
                .all(|&(s, l)| self.runs_by_addr.get(&s) == Some(&l))
        {
            return Err(SimError::Invariant("run index out of sync with order_of"));
        }
        let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
        for &(_, l) in &rescan {
            *histogram.entry(l).or_insert(0) += 1;
        }
        if self.runs_by_size != histogram {
            return Err(SimError::Invariant("size index out of sync with run map"));
        }
        Ok(())
    }
}

/// First frame `>= start` congruent to `in0` modulo the huge page size —
/// the placement anchor of contiguity-aware paging.
fn congruent_start(start: u64, in0: u64) -> u64 {
    let want = in0 % PAGES_PER_HUGE_PAGE;
    let base = start - (start % PAGES_PER_HUGE_PAGE);
    let candidate = base + want;
    if candidate >= start {
        candidate
    } else {
        candidate + PAGES_PER_HUGE_PAGE
    }
}

/// Lazy iterator over maximal free runs; see
/// [`BuddyAllocator::free_runs_iter`]. A thin view over the persistent
/// run index — each `next` is one B-tree step, independent of how much
/// allocated ground separates the runs.
#[derive(Debug)]
pub struct FreeRuns<'a> {
    inner: std::collections::btree_map::Range<'a, u64, u64>,
}

impl Iterator for FreeRuns<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        self.inner.next().map(|(&start, &len)| (start, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim_core::HUGE_PAGE_ORDER;

    #[test]
    fn new_allocator_is_fully_free_and_coalesced() {
        let a = BuddyAllocator::new(4096);
        assert_eq!(a.free_frames(), 4096);
        assert_eq!(a.used_frames(), 0);
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 4);
        a.check_invariants().unwrap();
        assert_eq!(a.free_runs(), vec![(0, 4096)]);
        assert_eq!(a.largest_free_run(), 4096);
    }

    #[test]
    fn drain_singles_matches_repeated_alloc() {
        // From a fresh odd-sized carve and from an arbitrary punched-out
        // state, the bulk drain must emit the same sequence as looping
        // `alloc(0)` until exhaustion.
        for punch in [&[][..], &[3, 17, 100, 701, 702, 998][..]] {
            let mut via_loop = BuddyAllocator::new(1000);
            let mut via_drain = BuddyAllocator::new(1000);
            for &f in punch {
                via_loop.alloc_at(f, 0).unwrap();
                via_drain.alloc_at(f, 0).unwrap();
            }
            let looped = via_loop.bulk_update(|b| {
                let mut v = Vec::new();
                while let Ok(f) = b.alloc(0) {
                    v.push(f);
                }
                v
            });
            let drained = via_drain.bulk_update(|b| b.drain_singles());
            assert_eq!(looped, drained);
            assert_eq!(via_drain.free_frames(), 0);
            via_drain.check_invariants().unwrap();
        }
    }

    #[test]
    fn free_singles_matches_sequential_frees() {
        // Drain everything, then free a pseudo-random subset: the bulk
        // path must land on the same block decomposition as one-at-a-time
        // frees in any order (here: the shuffled order itself).
        let mut seq = BuddyAllocator::new(1000);
        let mut bulk = BuddyAllocator::new(1000);
        let mut released: Vec<u64> = Vec::new();
        let mut x = 12345u64;
        seq.bulk_update(|b| {
            while let Ok(f) = b.alloc(0) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if x % 3 != 0 {
                    released.push(f);
                }
            }
            for &f in &released {
                b.free(f, 0).unwrap();
            }
        });
        bulk.bulk_update(|b| {
            b.drain_singles();
            b.free_singles(&released).unwrap();
        });
        assert_eq!(seq.free_frames(), bulk.free_frames());
        assert_eq!(seq.free_runs(), bulk.free_runs());
        for o in 0..=MAX_ORDER {
            assert_eq!(
                seq.free_blocks_of_order(o),
                bulk.free_blocks_of_order(o),
                "order {o} block counts differ"
            );
        }
        bulk.check_invariants().unwrap();
        // Double-free and out-of-range are rejected.
        let mut b = BuddyAllocator::new(64);
        b.bulk_update(|b| {
            let got = b.drain_singles();
            assert_eq!(got.len(), 64);
            b.free_singles(&[5]).unwrap();
            assert!(b.free_singles(&[5]).is_err());
            assert!(b.free_singles(&[64]).is_err());
            b.free_singles(&(0..64).filter(|&f| f != 5).collect::<Vec<_>>())
                .unwrap();
        });
        b.check_invariants().unwrap();
        assert_eq!(b.free_runs(), vec![(0, 64)]);
    }

    #[test]
    fn odd_sized_memory_is_carved_correctly() {
        // 1000 frames: not a power of two.
        let a = BuddyAllocator::new(1000);
        assert_eq!(a.free_frames(), 1000);
        a.check_invariants().unwrap();
        assert_eq!(a.free_runs(), vec![(0, 1000)]);
    }

    #[test]
    fn alloc_splits_and_free_merges() {
        let mut a = BuddyAllocator::new(1024);
        let f = a.alloc(0).unwrap();
        assert_eq!(f, 0);
        assert_eq!(a.free_frames(), 1023);
        a.check_invariants().unwrap();
        a.free(f, 0).unwrap();
        assert_eq!(a.free_frames(), 1024);
        // Fully merged back into one max-order block.
        assert_eq!(a.free_blocks_of_order(MAX_ORDER), 1);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alloc_prefers_low_addresses() {
        let mut a = BuddyAllocator::new(2048);
        let f1 = a.alloc(0).unwrap();
        let f2 = a.alloc(0).unwrap();
        assert!(f1 < f2);
        assert_eq!(f2, 1);
    }

    #[test]
    fn huge_order_allocation() {
        let mut a = BuddyAllocator::new(2048);
        let h = a.alloc(HUGE_PAGE_ORDER).unwrap();
        assert_eq!(h % 512, 0);
        assert_eq!(a.free_frames(), 2048 - 512);
        a.free(h, HUGE_PAGE_ORDER).unwrap();
        assert_eq!(a.free_frames(), 2048);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a = BuddyAllocator::new(4);
        assert!(a.alloc(9).is_err());
        for _ in 0..4 {
            a.alloc(0).unwrap();
        }
        assert_eq!(a.alloc(0), Err(SimError::OutOfMemory { order: 0 }));
    }

    #[test]
    fn alloc_at_carves_the_exact_block() {
        let mut a = BuddyAllocator::new(4096);
        a.alloc_at(512, HUGE_PAGE_ORDER).unwrap();
        assert!(!a.is_frame_free(512));
        assert!(!a.is_frame_free(1023));
        assert!(a.is_frame_free(511));
        assert!(a.is_frame_free(1024));
        assert_eq!(a.free_frames(), 4096 - 512);
        a.check_invariants().unwrap();
        a.free(512, HUGE_PAGE_ORDER).unwrap();
        a.check_invariants().unwrap();
        assert_eq!(a.free_runs(), vec![(0, 4096)]);
    }

    #[test]
    fn alloc_at_rejects_busy_and_misaligned() {
        let mut a = BuddyAllocator::new(1024);
        a.alloc_at(0, 9).unwrap();
        assert_eq!(a.alloc_at(0, 9), Err(SimError::RangeBusy));
        assert_eq!(a.alloc_at(0, 0), Err(SimError::RangeBusy));
        assert_eq!(a.alloc_at(3, 9), Err(SimError::Unaligned));
        assert_eq!(a.alloc_at(1024, 0), Err(SimError::OutOfRange));
        // Partially busy huge range.
        assert_eq!(a.alloc_at(512, 9), Ok(()));
        assert_eq!(a.alloc_at(512, 9), Err(SimError::RangeBusy));
    }

    #[test]
    fn double_free_detected() {
        let mut a = BuddyAllocator::new(64);
        let f = a.alloc(2).unwrap();
        a.free(f, 2).unwrap();
        assert!(matches!(a.free(f, 2), Err(SimError::BadFree(_))));
        // Freeing a sub-block of a free block is also a bad free.
        assert!(matches!(a.free(f, 0), Err(SimError::BadFree(_))));
    }

    #[test]
    fn partial_free_of_targeted_block() {
        // EMA books an order-9 block, allocates pages inside it, then the
        // booking times out and the *unused* pages return one by one.
        let mut a = BuddyAllocator::new(1024);
        a.alloc_at(0, 9).unwrap();
        // Return frames 10..512 individually.
        for f in 10..512 {
            a.free(f, 0).unwrap();
        }
        assert_eq!(a.free_frames(), 1024 - 10);
        a.check_invariants().unwrap();
        // Frames 0..10 are still allocated.
        assert!(!a.is_frame_free(0));
        assert!(!a.is_frame_free(9));
        assert!(a.is_frame_free(10));
        // Now free the head; everything must merge back.
        for f in 0..10 {
            a.free(f, 0).unwrap();
        }
        assert_eq!(a.free_runs(), vec![(0, 1024)]);
        a.check_invariants().unwrap();
    }

    #[test]
    fn is_range_free_spans_blocks() {
        let mut a = BuddyAllocator::new(2048);
        assert!(a.is_range_free(0, 2048));
        assert!(a.is_range_free(0, 0));
        assert!(!a.is_range_free(0, 4096));
        a.alloc_at(100, 0).unwrap();
        assert!(!a.is_range_free(0, 512));
        assert!(a.is_range_free(0, 100));
        assert!(a.is_range_free(101, 512));
    }

    #[test]
    fn fragmentation_index_reflects_layout() {
        let mut a = BuddyAllocator::new(1024);
        assert_eq!(a.fragmentation_index(9), 0.0);
        // Allocate everything, then free every other frame: classic
        // checkerboard fragmentation.
        let mut frames = Vec::new();
        while let Ok(f) = a.alloc(0) {
            frames.push(f);
        }
        for &f in frames.iter().step_by(2) {
            a.free(f, 0).unwrap();
        }
        let idx = a.fragmentation_index(9);
        assert!(idx > 0.9, "checkerboard should be highly fragmented: {idx}");
        a.check_invariants().unwrap();
    }

    #[test]
    fn free_runs_merge_non_buddy_neighbors() {
        let mut a = BuddyAllocator::new(1024);
        // Allocate frames 0 and 3; frees leave runs [1,2] and [4..1024)
        // where 1,2 are adjacent but not buddies (1 is odd).
        a.alloc_at(0, 0).unwrap();
        a.alloc_at(3, 0).unwrap();
        let runs = a.free_runs();
        assert_eq!(runs, vec![(1, 2), (4, 1020)]);
        assert_eq!(a.largest_free_run(), 1020);
    }

    /// Reference semantics `free_runs_from` must reproduce: full
    /// enumeration filtered on run start.
    fn runs_from_reference(a: &BuddyAllocator, frame: u64) -> Vec<(u64, u64)> {
        a.free_runs().into_iter().filter(|r| r.0 >= frame).collect()
    }

    #[test]
    fn free_runs_iter_matches_eager_enumeration() {
        let mut a = BuddyAllocator::new(1024);
        for f in [0, 3, 100, 513, 700] {
            a.alloc_at(f, 0).unwrap();
        }
        assert_eq!(a.free_runs_iter().collect::<Vec<_>>(), a.free_runs());
    }

    #[test]
    fn free_runs_from_skips_straddling_run() {
        let mut a = BuddyAllocator::new(2048);
        a.alloc_at(100, 0).unwrap();
        a.alloc_at(1000, 0).unwrap();
        // Runs: (0,100), (101,899), (1001,1047).
        for cursor in [0, 1, 100, 101, 102, 500, 999, 1000, 1001, 1002, 2047, 2048] {
            assert_eq!(
                a.free_runs_from(cursor).collect::<Vec<_>>(),
                runs_from_reference(&a, cursor),
                "cursor {cursor}"
            );
        }
    }

    #[test]
    fn free_runs_from_with_abutting_block_boundary() {
        // Craft a run whose interior contains a block boundary exactly at
        // the cursor: blocks (1,len 1) and (2,len 2) chain into run (1,3);
        // a cursor of 2 sits on the second block's start and must still
        // skip the whole run.
        let mut a = BuddyAllocator::new(64);
        a.alloc_at(0, 0).unwrap();
        a.alloc_at(4, 0).unwrap();
        assert_eq!(a.free_runs(), vec![(1, 3), (5, 59)]);
        for cursor in 0..=8 {
            assert_eq!(
                a.free_runs_from(cursor).collect::<Vec<_>>(),
                runs_from_reference(&a, cursor),
                "cursor {cursor}"
            );
        }
    }

    #[test]
    fn free_runs_from_on_empty_allocator() {
        let mut a = BuddyAllocator::new(8);
        for _ in 0..8 {
            a.alloc(0).unwrap();
        }
        assert_eq!(a.free_runs_from(0).next(), None);
        assert_eq!(a.free_runs_iter().next(), None);
    }

    #[test]
    fn index_tracks_rescan_through_alloc_free() {
        let mut a = BuddyAllocator::new(2048);
        a.alloc_at(100, 0).unwrap();
        a.alloc_at(512, 9).unwrap();
        let f = a.alloc(3).unwrap();
        assert_eq!(a.free_runs(), a.free_runs_rescan());
        a.free(f, 3).unwrap();
        a.free(100, 0).unwrap();
        assert_eq!(a.free_runs(), a.free_runs_rescan());
        a.check_invariants().unwrap();
        a.free(512, 9).unwrap();
        assert_eq!(a.free_runs(), vec![(0, 2048)]);
        a.check_invariants().unwrap();
    }

    #[test]
    fn first_run_fitting_is_next_fit() {
        let mut a = BuddyAllocator::new(2048);
        a.alloc_at(100, 0).unwrap();
        a.alloc_at(1000, 0).unwrap();
        // Runs: (0,100), (101,899), (1001,1047).
        assert_eq!(a.first_run_fitting(0, 50), Some((0, 100)));
        assert_eq!(a.first_run_fitting(0, 200), Some((101, 899)));
        assert_eq!(a.first_run_fitting(102, 200), Some((1001, 1047)));
        assert_eq!(a.first_run_fitting(0, 2000), None);
        assert_eq!(a.first_run_fitting(2000, 10), None);
    }

    #[test]
    fn congruent_queries_match_filtered_scans() {
        let mut a = BuddyAllocator::new(4096);
        for f in [3, 700, 1500, 2600] {
            a.alloc_at(f, 0).unwrap();
        }
        let fits = |(s, l): (u64, u64), in0: u64, len: u64| {
            let want = in0 % 512;
            let base = s - s % 512;
            let cand = if base + want >= s {
                base + want
            } else {
                base + want + 512
            };
            cand + len <= s + l
        };
        for in0 in [0u64, 512, 515, 1027] {
            for len in [1u64, 64, 512, 700, 1024] {
                for cursor in [0u64, 1, 701, 1501, 4095] {
                    let naive_at = a
                        .free_runs_rescan()
                        .into_iter()
                        .find(|&r| r.0 >= cursor && fits(r, in0, len));
                    assert_eq!(
                        a.first_congruent_run(cursor, in0, len),
                        naive_at,
                        "at cursor={cursor} in0={in0} len={len}"
                    );
                    let naive_below = a
                        .free_runs_rescan()
                        .into_iter()
                        .find(|&r| r.0 < cursor && fits(r, in0, len));
                    assert_eq!(
                        a.first_congruent_run_below(cursor, in0, len),
                        naive_below,
                        "below cursor={cursor} in0={in0} len={len}"
                    );
                }
            }
        }
    }

    #[test]
    fn fragmented_congruent_query_rejects_without_probing() {
        // One pinned frame per huge region: no order-9 block survives, so
        // a region-aligned whole-region query must reject via the guards
        // without examining a single run.
        let mut a = BuddyAllocator::new(4096);
        let mut held = Vec::new();
        while let Ok(f) = a.alloc(0) {
            held.push(f);
        }
        for &f in &held {
            if f % 512 != 0 {
                a.free(f, 0).unwrap();
            }
        }
        assert!(!a.has_suitable_block(HUGE_PAGE_ORDER));
        a.take_work_counters();
        assert_eq!(a.first_congruent_run(0, 0, 512), None);
        assert_eq!(a.first_congruent_run_below(4096, 1024, 600), None);
        assert_eq!(a.run_probes(), 0, "guards must reject before any probe");
    }

    #[test]
    fn nth_run_matches_filtered_vec_indexing() {
        let mut a = BuddyAllocator::new(4096);
        for f in [300, 900, 1200, 3000] {
            a.alloc_at(f, 0).unwrap();
        }
        let candidates: Vec<(u64, u64)> = a.free_runs_iter().filter(|&(_, l)| l >= 256).collect();
        assert_eq!(a.count_runs_at_least(256), candidates.len() as u64);
        for (i, &c) in candidates.iter().enumerate() {
            assert_eq!(a.nth_run_at_least(256, i as u64), Some(c));
        }
        assert_eq!(a.nth_run_at_least(256, candidates.len() as u64), None);
    }

    #[test]
    fn work_counters_drain_and_accumulate() {
        let mut a = BuddyAllocator::new(1024);
        a.take_work_counters();
        let f = a.alloc(0).unwrap();
        a.free(f, 0).unwrap();
        assert!(a.index_updates() > 0, "alloc+free must touch the index");
        assert_eq!(a.run_probes(), 0);
        a.first_run_fitting(0, 1);
        assert_eq!(a.run_probes(), 1);
        let (probes, updates) = a.take_work_counters();
        assert_eq!(probes, 1);
        assert!(updates > 0);
        assert_eq!(a.take_work_counters(), (0, 0));
    }
}

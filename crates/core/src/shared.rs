//! Shared state connecting MHPS, the two layers' policies and the timeout
//! controller.
//!
//! In the prototype this is kernel state exported to guests ("Gemini makes
//! each guest aware of the mis-aligned huge host pages mapped to it, by
//! providing their guest physical addresses labeled with the VM id"). One
//! machine is still driven by one thread at a time; the `Arc<Mutex<_>>`
//! makes the handle `Send` so whole machines can be built and run on the
//! worker threads of the parallel experiment executor. Accesses are short,
//! self-contained lock/release pairs — never held across a policy call.

use crate::mhps::VmScan;
use gemini_sim_core::{Cycles, VmId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// State shared between the Gemini components.
#[derive(Debug, Default)]
pub struct GeminiState {
    /// Latest per-VM scan results from MHPS.
    pub scans: HashMap<VmId, VmScan>,
    /// Current effective booking timeout from Algorithm 1.
    pub booking_timeout: Cycles,
    /// How long the huge bucket holds freed well-aligned regions.
    pub bucket_hold: Cycles,
}

impl GeminiState {
    /// Creates the initial state with sensible defaults (booking timeout
    /// starts at ~40 ms of CPU time; Algorithm 1 adapts it from there).
    pub fn new() -> Self {
        Self {
            scans: HashMap::new(),
            booking_timeout: Cycles::from_millis(40.0),
            bucket_hold: Cycles::from_millis(200.0),
        }
    }
}

/// Shared handle to [`GeminiState`].
pub type GeminiShared = Arc<Mutex<GeminiState>>;

/// Creates a fresh shared handle.
pub fn new_shared() -> GeminiShared {
    Arc::new(Mutex::new(GeminiState::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_state_is_visible_across_clones() {
        let shared = new_shared();
        let other = Arc::clone(&shared);
        shared.lock().unwrap().booking_timeout = Cycles(123);
        assert_eq!(other.lock().unwrap().booking_timeout, Cycles(123));
        other
            .lock()
            .unwrap()
            .scans
            .insert(VmId(1), VmScan::default());
        assert!(shared.lock().unwrap().scans.contains_key(&VmId(1)));
    }

    #[test]
    fn defaults_are_positive() {
        let s = GeminiState::new();
        assert!(s.booking_timeout > Cycles::ZERO);
        assert!(s.bucket_hold > s.booking_timeout);
    }
}

//! The reused-VM story (paper §6.3), on a key-value-store workload.
//!
//! A memory-hungry SVM job runs in the VM and exits; the host keeps the
//! VM's memory, so all the huge-page backing survives. A Redis-like
//! workload then starts in the same VM. Systems that scatter new base
//! allocations across the formerly-huge regions destroy the alignment;
//! Gemini's huge bucket holds freed well-aligned regions and hands them
//! back wholesale.
//!
//! ```text
//! cargo run --release --example kv_store_reuse
//! ```

use gemini_harness::Scale;
use gemini_sim_core::VmId;
use gemini_vm_sim::{Machine, SystemKind};
use gemini_workloads::{spec_by_name, WorkloadGen};

fn run_reuse(system: SystemKind, scale: &Scale) -> (f64, u64, f64, f64) {
    let cfg = scale.machine_config(false, false, 11);
    let mut m = Machine::new(system, cfg);
    let vm: VmId = m.add_vm().expect("default MMU geometry is valid");
    // Phase 1: the SVM predecessor with a large working set.
    let svm = spec_by_name("SVM")
        .expect("SVM workload registered")
        .scaled(scale.ws_factor);
    m.run(vm, WorkloadGen::new(svm, scale.ops / 2, 3)).unwrap();
    m.clear_workload(vm).unwrap();
    // Phase 2: the reused VM runs Redis.
    let redis = spec_by_name("Redis")
        .expect("Redis workload registered")
        .scaled(scale.ws_factor);
    let r = m.run(vm, WorkloadGen::new(redis, scale.ops, 4)).unwrap();
    (
        r.throughput(),
        r.tlb_misses(),
        r.aligned_rate(),
        r.bucket_reuse_rate,
    )
}

fn main() {
    let scale = Scale::demo();
    println!("Reused-VM scenario: SVM (~large WS) runs, exits, Redis follows.\n");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "system", "ops/s", "TLB misses", "aligned rate", "bucket reuse"
    );
    for system in [
        SystemKind::HostBVmB,
        SystemKind::Thp,
        SystemKind::Ingens,
        SystemKind::Gemini,
    ] {
        let (tput, misses, aligned, reuse) = run_reuse(system, &scale);
        println!(
            "{:<14} {:>12.0} {:>12} {:>13.0}% {:>13.0}%",
            system.label(),
            tput,
            misses,
            aligned * 100.0,
            reuse * 100.0,
        );
    }
    println!(
        "\nThe bucket column is Gemini-only: the share of freed well-aligned\n\
         regions handed back to later allocations (the paper reports 88%)."
    );
}

//! Cross-crate observability tests: determinism of the recorded event
//! stream and time series, and reconciliation of the metrics registry
//! against the simulator's own performance counters.

use gemini_harness::runner::run_workload_traced;
use gemini_harness::{trace, Scale};
use gemini_obs::{Recorder, TraceConfig};
use gemini_vm_sim::{RunResult, SystemKind};
use gemini_workloads::spec_by_name;

fn traced_run(seed: u64) -> (RunResult, Recorder) {
    let scale = Scale {
        ops: 1_500,
        ..Scale::quick()
    };
    let spec = spec_by_name("Redis").expect("Redis is in the catalog");
    run_workload_traced(
        SystemKind::Gemini,
        &spec,
        &scale,
        true,
        seed,
        &TraceConfig::all(),
    )
    .expect("traced run completes")
}

#[test]
fn traced_run_emits_events_and_series() {
    let (result, rec) = traced_run(7);
    assert!(result.ops > 0);
    // The trace is non-empty and carries faults at minimum.
    let events = rec.events();
    assert!(!events.is_empty(), "no events recorded");
    assert!(
        rec.event_summary()
            .iter()
            .any(|(label, _, _)| *label == "fault"),
        "fault events missing: {:?}",
        rec.event_summary()
    );
    // At least three sampled points, each carrying all five series.
    let samples = rec.samples();
    assert!(samples.len() >= 3, "only {} samples", samples.len());
    assert!(samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
    // Rendered artefacts are non-empty and mention the series headers.
    let series = trace::render_series(&rec);
    for header in [
        "host FMFI",
        "guest FMFI",
        "aligned",
        "TLB miss",
        "free 2MiB",
    ] {
        assert!(series.contains(header), "{series}");
    }
    assert!(!trace::render_event_summary(&rec).is_empty());
    assert!(!trace::render_registry(&rec).is_empty());
}

#[test]
fn identically_seeded_runs_trace_byte_identically() {
    let (ra, reca) = traced_run(11);
    let (rb, recb) = traced_run(11);
    assert_eq!(ra.vtime, rb.vtime);
    assert_eq!(ra.counters, rb.counters);
    // The full serialized trace — events, samples, registry — is
    // byte-identical across identically seeded runs.
    let ja = trace::trace_json_lines(std::slice::from_ref(&ra), &reca);
    let jb = trace::trace_json_lines(std::slice::from_ref(&rb), &recb);
    assert_eq!(ja, jb);
    assert!(ja.len() > 10, "trace is substantial: {} lines", ja.len());
    // And a different seed genuinely changes the stream.
    let (rc_, recc) = traced_run(12);
    let jc = trace::trace_json_lines(std::slice::from_ref(&rc_), &recc);
    assert_ne!(ja, jc);
}

#[test]
fn registry_counters_reconcile_with_perf_counters() {
    let (result, rec) = traced_run(23);
    let reg = rec.registry();
    // Every shootdown the MMU counted flowed through the recorder too.
    assert_eq!(
        reg.counter("mmu.shootdown_rounds"),
        result.counters.shootdowns,
        "registry disagrees with PerfCounters"
    );
    // Fault counters cover every page the run touched: the machine
    // counts one guest fault per first touch.
    assert!(reg.counter("machine.guest_faults") > 0);
    assert!(reg.counter("machine.host_faults") > 0);
}

#[test]
fn disabled_tracing_records_nothing() {
    let scale = Scale {
        ops: 300,
        ..Scale::quick()
    };
    let spec = spec_by_name("Redis").unwrap();
    let (_, rec) = run_workload_traced(
        SystemKind::Gemini,
        &spec,
        &scale,
        false,
        3,
        &TraceConfig::off(),
    )
    .unwrap();
    assert!(rec.events().is_empty());
    assert!(rec.samples().is_empty());
    assert!(rec.registry().is_empty());
    assert_eq!(rec.dropped(), 0);
}

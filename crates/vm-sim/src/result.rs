//! Results of a workload run on the simulated machine.

use gemini_mm::AlignmentStats;
use gemini_sim_core::Cycles;
use gemini_tlb::PerfCounters;

/// Metrics of one workload run in one VM.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System label the run executed under.
    pub system: &'static str,
    /// Workload name.
    pub workload: String,
    /// Operations completed.
    pub ops: u64,
    /// Virtual time consumed.
    pub vtime: Cycles,
    /// Mean request latency (zero when the workload does not track
    /// latency).
    pub mean_latency: Cycles,
    /// 99th-percentile request latency.
    pub p99_latency: Cycles,
    /// MMU performance counters at the end of the run (deltas since the
    /// run began).
    pub counters: PerfCounters,
    /// Cross-layer huge-page alignment at the end of the run.
    pub alignment: AlignmentStats,
    /// Guest-layer fragmentation index at the end of the run.
    pub guest_fmfi: f64,
    /// Host-layer fragmentation index at the end of the run.
    pub host_fmfi: f64,
    /// Huge-bucket reuse rate (Gemini only; 0 otherwise).
    pub bucket_reuse_rate: f64,
}

impl RunResult {
    /// Throughput in operations per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.vtime == Cycles::ZERO {
            0.0
        } else {
            self.ops as f64 / self.vtime.as_secs_f64()
        }
    }

    /// The well-aligned huge page rate (Tables 1, 3, 4).
    pub fn aligned_rate(&self) -> f64 {
        self.alignment.aligned_rate()
    }

    /// TLB misses (page walks) observed during the run.
    pub fn tlb_misses(&self) -> u64 {
        self.counters.stlb_misses
    }
}

/// One completed VM lifecycle inside a fleet run.
#[derive(Debug, Clone)]
pub struct FleetVmRecord {
    /// Fleet-wide arrival ordinal from the plan.
    pub index: u32,
    /// The VM's whole-lifetime run result.
    pub result: RunResult,
    /// Host base-page-equivalent frames `remove_vm` reclaimed at
    /// departure (leak-checked against the EPT footprint).
    pub frames_reclaimed: u64,
}

/// Outcome of driving one host through a fleet arrival/departure
/// process ([`crate::Machine::run_fleet`]).
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Completed VM lifecycles, in departure order.
    pub vms: Vec<FleetVmRecord>,
    /// Lifecycle events processed: one per arrival plus one per
    /// departure (every VM departs, so this is `2 * vms.len()`).
    pub churn_events: u64,
    /// Most VMs resident at once.
    pub peak_resident: usize,
    /// Host fragmentation index when the fleet drained.
    pub end_host_fmfi: f64,
    /// Free host blocks at huge-page order when the fleet drained.
    pub end_free_order9: u64,
}

impl FleetOutcome {
    /// Mean well-aligned huge-page rate across completed lifecycles.
    pub fn mean_aligned_rate(&self) -> f64 {
        if self.vms.is_empty() {
            return 0.0;
        }
        self.vms
            .iter()
            .map(|v| v.result.aligned_rate())
            .sum::<f64>()
            / self.vms.len() as f64
    }

    /// Total host frames reclaimed by departures.
    pub fn frames_reclaimed(&self) -> u64 {
        self.vms.iter().map(|v| v.frames_reclaimed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = RunResult {
            system: "test",
            workload: "w".into(),
            ops: 2_100_000,
            vtime: Cycles::from_secs(1.0),
            mean_latency: Cycles::ZERO,
            p99_latency: Cycles::ZERO,
            counters: PerfCounters::default(),
            alignment: AlignmentStats::default(),
            guest_fmfi: 0.0,
            host_fmfi: 0.0,
            bucket_reuse_rate: 0.0,
        };
        assert!((r.throughput() - 2_100_000.0).abs() < 1.0);
        let empty = RunResult {
            vtime: Cycles::ZERO,
            ..r
        };
        assert_eq!(empty.throughput(), 0.0);
    }
}

//! Deterministic randomness for workloads and experiments.
//!
//! Every random decision in the simulator flows through a [`DetRng`] seeded
//! explicitly by the experiment definition, so that a run is a pure function
//! of its configuration. The module also provides a [`Zipf`] sampler because
//! the key-value-store workload models (Redis, RocksDB, Memcached, Masstree)
//! draw keys from skewed distributions.

/// One SplitMix64 mixing step: a bijective avalanche of `x`.
///
/// This is the finalizer every seed in the simulator flows through —
/// both [`DetRng::new`]'s state expansion and [`derive_seed`]'s
/// per-run seed derivation — so nearby inputs (consecutive cell
/// indices, base seeds differing in one bit) map to statistically
/// independent outputs.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent per-run seed from a base seed, a stream tag
/// and an index.
///
/// Every experiment cell derives its seed through this single helper
/// *before* execution, so results are a pure function of
/// `(base, stream, index)` — never of execution order, thread count or
/// which runs happened earlier. Ad-hoc derivations (`seed ^ 0x5157`
/// and friends) are banned: XORing small constants produces correlated
/// streams and collides across experiments.
pub fn derive_seed(base: u64, stream: &str, index: u64) -> u64 {
    // Fold the tag with FNV-1a, then chain three SplitMix64 rounds so
    // base, tag and index each avalanche through the full 64 bits.
    let mut tag: u64 = 0xCBF2_9CE4_8422_2325;
    for b in stream.bytes() {
        tag = (tag ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    splitmix64(splitmix64(splitmix64(base) ^ tag).wrapping_add(index))
}

/// A deterministic, explicitly seeded random number generator.
///
/// The generator is a hand-rolled xoshiro256++ (public-domain
/// algorithm by Blackman & Vigna) seeded through SplitMix64, so the
/// simulator carries no external RNG dependency and the stream is
/// identical on every platform and toolchain.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors; it guarantees a non-zero
        // state for every seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derives an independent child generator; used to give each VM,
    /// workload and daemon its own stream without cross-coupling.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Debiased multiply-shift (Lemire): uniform without modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.is_empty() {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A Zipf-distributed sampler over `{0, 1, ..., n-1}` using
/// rejection-inversion (Hörmann & Derflinger), suitable for large `n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `exponent` (> 0, != 1 is
    /// handled as well as the harmonic case).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent <= 0`.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(exponent > 0.0, "Zipf exponent must be positive");
        let h_integral_x1 = Self::h_integral(1.5, exponent) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, exponent);
        let s = 2.0
            - Self::h_integral_inverse(
                Self::h_integral(2.5, exponent) - Self::h(2.0, exponent),
                exponent,
            );
        Self {
            n,
            exponent,
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// Draws one sample in `[0, n)` (rank 0 is the most popular item).
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        loop {
            let u = self.h_integral_n + rng.unit() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse(u, self.exponent);
            let mut k = (x + 0.5).floor() as i64;
            k = k.clamp(1, self.n as i64);
            let kf = k as f64;
            if kf - x <= self.s
                || u >= Self::h_integral(kf + 0.5, self.exponent) - Self::h(kf, self.exponent)
            {
                return (k - 1) as u64;
            }
        }
    }

    fn h(x: f64, e: f64) -> f64 {
        (-e * x.ln()).exp()
    }

    fn h_integral(x: f64, e: f64) -> f64 {
        let log_x = x.ln();
        Self::helper2((1.0 - e) * log_x) * log_x
    }

    fn h_integral_inverse(x: f64, e: f64) -> f64 {
        let mut t = x * (1.0 - e);
        if t < -1.0 {
            t = -1.0;
        }
        (Self::helper1(t) * x).exp()
    }

    /// `log1p(x)/x`, continuous at 0.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
        }
    }

    /// `expm1(x)/x`, continuous at 0.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_deterministic_and_avalanches() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Known vector: first output of the reference SplitMix64 with
        // state 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        // Single-bit input changes flip roughly half the output bits.
        let flipped = (splitmix64(1) ^ splitmix64(0)).count_ones();
        assert!((16..=48).contains(&flipped), "weak avalanche: {flipped}");
    }

    #[test]
    fn derive_seed_separates_streams_and_indices() {
        let a = derive_seed(42, "clean", 0);
        assert_eq!(a, derive_seed(42, "clean", 0), "pure function");
        assert_ne!(a, derive_seed(42, "clean", 1), "index matters");
        assert_ne!(a, derive_seed(42, "reused", 0), "stream matters");
        assert_ne!(a, derive_seed(43, "clean", 0), "base matters");
        // Consecutive indices must not produce correlated seeds the way
        // `seed ^ index` would.
        let d01 = derive_seed(42, "clean", 0) ^ derive_seed(42, "clean", 1);
        let d12 = derive_seed(42, "clean", 1) ^ derive_seed(42, "clean", 2);
        assert_ne!(d01, d12, "xor-deltas must not repeat");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.below(1000), c2.below(1000));
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            let v = rng.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        rng.shuffle(&mut [] as &mut [u32]);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = DetRng::new(11);
        let z = Zipf::new(10_000, 0.99);
        let mut head = 0u64;
        let samples = 20_000;
        for _ in 0..samples {
            let s = z.sample(&mut rng);
            assert!(s < 10_000);
            if s < 100 {
                head += 1;
            }
        }
        // With exponent ~1, the top 1% of items should draw far more than
        // 1% of accesses (roughly half).
        assert!(head as f64 / samples as f64 > 0.3, "head share too small");
    }

    #[test]
    fn zipf_uniformish_when_exponent_small() {
        let mut rng = DetRng::new(13);
        let z = Zipf::new(1000, 0.05);
        let mut head = 0u64;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Near-uniform: top 1% draws close to 1%.
        assert!((head as f64 / 10_000.0) < 0.08);
    }
}

//! Experiment harness for the Gemini reproduction.
//!
//! Each module under [`experiments`] regenerates one or more artefacts of
//! the paper's evaluation (see DESIGN.md for the full index):
//!
//! | module | artefacts |
//! |--------|-----------|
//! | [`experiments::fig02`] | Figure 2 (microbenchmark, 4 page configs) |
//! | [`experiments::motivation`] | Figure 3 + Table 1 |
//! | [`experiments::clean_slate`] | Figures 8–11 + Table 3 |
//! | [`experiments::reused_vm`] | Figures 12–15 + Table 4 |
//! | [`experiments::breakdown`] | Figure 16 |
//! | [`experiments::collocated`] | Figures 17–18 |
//! | [`experiments::ablations`] | Algorithm 1 and design-choice ablations |
//!
//! Experiments are pure functions of a [`Scale`] (and are deterministic),
//! so the same code drives the quick examples, the integration tests and
//! the full `cargo bench` reproduction.

pub mod bench;
pub mod exec;
pub mod experiments;
pub mod perfdiff;
pub mod report;
pub mod runner;
pub mod scale;
pub mod trace;

pub use exec::{effective_jobs, run_cells, run_cells_profiled, run_cells_traced, run_shards};
pub use perfdiff::{compare_reports, DiffReport};
pub use report::Table;
pub use runner::{
    record_workload_on, replay_trace_on, run_workload_on, run_workload_profiled,
    run_workload_sharded, run_workload_traced,
};
pub use scale::Scale;

//! The huge-page policy interface and the effects vocabulary.
//!
//! A [`HugePolicy`] drives one layer's page-size decisions: what to do on a
//! demand fault, and which regions the background daemon (the khugepaged
//! analogue) should promote. The mechanisms in [`crate::LayerEngine`]
//! (instantiated as [`crate::GuestMm`] and [`crate::HostMm`]) execute those
//! decisions and report [`Effects`] — the TLB invalidations, shootdowns and
//! cycles that the whole-system simulator applies to its MMU model and
//! clock.

use crate::costs::CostModel;
use crate::vma::Vma;
use gemini_buddy::BuddyAllocator;
use gemini_page_table::{AddressSpace, RegionPopulation};
use gemini_sim_core::{Cycles, VmId};

/// Which translation layer a policy instance is driving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Guest process page tables (GVA → GPA).
    Guest,
    /// VM/EPT page tables (GPA → HPA).
    Host,
}

impl LayerKind {
    /// The cost-model hook of the layer: (base fault cost, extra cost of
    /// resolving the fault with a huge mapping).
    pub fn fault_costs(self, costs: &CostModel) -> (Cycles, Cycles) {
        match self {
            LayerKind::Guest => (costs.minor_fault, costs.huge_fault_extra),
            LayerKind::Host => (costs.ept_fault, costs.ept_huge_fault_extra),
        }
    }
}

/// Context handed to a policy at demand-fault time.
pub struct FaultCtx<'a> {
    /// Layer taking the fault.
    pub layer: LayerKind,
    /// VM the fault belongs to.
    pub vm: VmId,
    /// Faulting frame in this layer's input space (GVA frame for the
    /// guest, GPA frame for the host).
    pub addr_frame: u64,
    /// The VMA containing the fault (guest layer only).
    pub vma: Option<&'a Vma>,
    /// True when this is the first fault anywhere in that VMA (guest
    /// layer only) — the moment CA-paging and Gemini's EMA pick offsets.
    pub first_touch_in_vma: bool,
    /// Population of the 2 MiB input region containing the fault.
    pub region_pop: RegionPopulation,
    /// Read access to this layer's physical allocator, for placement
    /// decisions (contiguity queries, fragmentation index).
    pub buddy: &'a BuddyAllocator,
    /// Read access to this layer's page table.
    pub table: &'a AddressSpace,
}

impl FaultCtx<'_> {
    /// The 2 MiB input region (huge-frame index) containing the fault.
    pub fn region(&self) -> u64 {
        self.addr_frame >> gemini_sim_core::HUGE_PAGE_ORDER
    }

    /// True when the faulting region is fully covered by the VMA (guest)
    /// or trivially true (host), i.e. a huge mapping would be legal.
    pub fn region_within_vma(&self) -> bool {
        match self.vma {
            None => true,
            Some(vma) => {
                let region_start = self.region() << gemini_sim_core::HUGE_PAGE_ORDER;
                let region_end = region_start + gemini_sim_core::PAGES_PER_HUGE_PAGE;
                vma.start_frame() <= region_start && region_end <= vma.start_frame() + vma.pages()
            }
        }
    }
}

/// What the policy wants done about a demand fault.
///
/// Placement-specific variants degrade gracefully: `HugeAt` falls back to
/// `Huge` then `Base` when the target is busy; `BaseAt` falls back to
/// `Base`. `*Reserved` variants use frames the policy already owns (e.g.
/// Gemini's huge booking or huge bucket) and bypass the buddy allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Map one base page wherever the allocator prefers.
    Base,
    /// Map one base page at the given output frame if it is free.
    BaseAt {
        /// Desired output base-frame.
        frame: u64,
    },
    /// Map one base page at a frame the policy owns (pre-reserved).
    BaseReserved {
        /// Policy-owned output base-frame.
        frame: u64,
    },
    /// Map the whole 2 MiB region with a fresh huge page (synchronous
    /// huge allocation, the Linux-THP fault path).
    Huge,
    /// Map the region with a huge page at the given output huge-frame.
    HugeAt {
        /// Desired output huge-frame.
        huge_frame: u64,
    },
    /// Map the region with a huge page the policy owns (booked/bucketed).
    HugeReserved {
        /// Policy-owned output huge-frame.
        huge_frame: u64,
    },
}

/// What actually happened when the mechanism resolved a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Size of the mapping installed.
    pub size: gemini_sim_core::page::PageSize,
    /// Output frame installed (base frame, or first frame of the huge
    /// page).
    pub pa_frame: u64,
    /// True when the policy's requested placement was honored exactly.
    pub placement_honored: bool,
}

/// How a promotion should be carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionKind {
    /// Promote only if the region is fully populated, contiguous and
    /// aligned — free of charge except the remap (CA-paging/Gemini path).
    InPlaceOnly,
    /// Allocate the *missing* base pages of an in-place-eligible region,
    /// then promote without copying (Gemini's huge preallocation).
    FillThenPromote,
    /// Try in-place; if the region is populated but scattered, fall back
    /// to a copy-promotion (khugepaged's collapse).
    PreferInPlace,
    /// Always collapse by copy into a fresh huge page.
    Copy,
}

/// A promotion request emitted by a policy's daemon pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionOp {
    /// Input huge-frame (GVA region for the guest, GPA region for the
    /// host) to promote.
    pub region: u64,
    /// Strategy.
    pub kind: PromotionKind,
    /// Preferred output huge-frame for copy promotions (e.g. Gemini
    /// targeting the GPA region under a misaligned host huge page).
    pub copy_target: Option<u64>,
    /// True when `copy_target` frames are policy-owned (bypass buddy).
    pub target_reserved: bool,
}

impl PromotionOp {
    /// Convenience constructor for the common untargeted case.
    pub fn new(region: u64, kind: PromotionKind) -> Self {
        Self {
            region,
            kind,
            copy_target: None,
            target_reserved: false,
        }
    }
}

/// Mutable view of one layer handed to the policy daemon.
pub struct LayerOps<'a> {
    /// Layer identity.
    pub layer: LayerKind,
    /// VM whose table is exposed (host daemons iterate VMs).
    pub vm: VmId,
    /// The layer's page table (read-only; mutations go through
    /// [`PromotionOp`]s so effects are accounted).
    pub table: &'a AddressSpace,
    /// The layer's physical allocator (mutable: booking and bucket
    /// maintenance allocate/free directly).
    pub buddy: &'a mut BuddyAllocator,
    /// Touch counters per input region, maintained by the mechanism from
    /// sampled accesses; HawkEye-style policies rank candidates by these.
    pub touches: &'a crate::touch::TouchMap,
    /// Current cycle time.
    pub now: Cycles,
}

/// Side effects of a memory-management operation, to be applied to the
/// MMU model and the clock by the whole-system simulator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Foreground cycles to charge the faulting/stalled workload.
    pub cycles: Cycles,
    //
    // Contract (DESIGN.md §16): the three invalidation fields below are
    // the ONLY channel by which the mm layer changes TLB residency.
    // The machine applies them through `MmuSim::invalidate_*` /
    // `charge_shootdowns`, each of which bumps the TLB stability epoch
    // that guards closed-form hit-run batching. A policy that mutated
    // mappings without emitting the matching effect would not only skip
    // the invalidation cost model — it would let a stale batch window
    // survive a remap. Emit effects for every mapping change.
    /// Guest-virtual 2 MiB regions whose TLB entries must be invalidated.
    pub gva_regions_invalidated: Vec<u64>,
    /// Guest-physical 2 MiB regions whose EPT mappings changed (nested-TLB
    /// invalidation plus a VM-wide flush, as after INVEPT).
    pub gpa_regions_changed: Vec<u64>,
    /// TLB-shootdown rounds issued.
    pub shootdowns: u64,
    /// Base pages copied by migrations/collapses (for reporting).
    pub pages_copied: u64,
    /// Base pages zeroed by fills/preallocations (for reporting).
    pub pages_zeroed: u64,
}

impl Effects {
    /// No effects.
    pub fn none() -> Self {
        Self::default()
    }

    /// Effects consisting only of a foreground cycle charge.
    pub fn cost(cycles: Cycles) -> Self {
        Self {
            cycles,
            ..Self::default()
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: Effects) {
        self.cycles += other.cycles;
        self.gva_regions_invalidated
            .extend(other.gva_regions_invalidated);
        self.gpa_regions_changed.extend(other.gpa_regions_changed);
        self.shootdowns += other.shootdowns;
        self.pages_copied += other.pages_copied;
        self.pages_zeroed += other.pages_zeroed;
    }
}

/// A huge-page management policy for one layer.
///
/// Implementations: the seven baseline systems in `gemini-policies`, and
/// Gemini's guest/host policies in the `gemini` crate.
pub trait HugePolicy: Send {
    /// Short display name ("THP", "Ingens", ...).
    fn name(&self) -> &'static str;

    /// Hands the policy a shared observability recorder so it can
    /// trace its decisions (bookings, EMA hits, bucket traffic, ...).
    /// The default implementation ignores it; simple baselines have
    /// nothing policy-specific to report beyond what the memory
    /// managers already emit.
    fn attach_recorder(&mut self, _rec: gemini_obs::Recorder) {}

    /// Hands the policy a shared span profiler so its internal scans
    /// can attribute wall-clock time to phases (contiguity scans,
    /// region walks). The default implementation ignores it; the
    /// engine already wraps whole `daemon`/`select_demotions` calls in
    /// scan spans, so only policies with distinguishable sub-phases
    /// need the handle.
    fn attach_profiler(&mut self, _prof: gemini_obs::Profiler) {}

    /// Decides how to satisfy a demand fault.
    fn fault_decision(&mut self, ctx: &FaultCtx<'_>) -> FaultDecision;

    /// Observes the resolved outcome of a fault it decided (for offset
    /// descriptors, booking consumption, fairness accounting, ...).
    fn after_fault(&mut self, _addr_frame: u64, _outcome: &FaultOutcome) {}

    /// How often the background daemon runs for this policy.
    fn daemon_period(&self) -> Cycles {
        Cycles::from_millis(10.0)
    }

    /// One background-daemon pass: may maintain policy-owned reservations
    /// via `ops.buddy`, and returns the promotions to execute.
    fn daemon(&mut self, _ops: &mut LayerOps<'_>) -> Vec<PromotionOp> {
        Vec::new()
    }

    /// One background pass selecting huge mappings to *demote* (split).
    ///
    /// Used to model policies that break huge pages at runtime, e.g.
    /// HawkEye's zero-page deduplication. Returns input huge-frame indices.
    fn select_demotions(&mut self, _ops: &mut LayerOps<'_>) -> Vec<u64> {
        Vec::new()
    }

    /// Offered ownership of a freed, huge-mapped output page (Gemini's
    /// huge bucket hook). Returning `true` keeps the frames out of the
    /// buddy allocator, owned by the policy.
    fn intercept_huge_free(&mut self, _pa_huge_frame: u64, _now: Cycles) -> bool {
        false
    }

    /// Notification that an input region was unmapped entirely.
    fn on_region_unmapped(&mut self, _region: u64) {}

    /// Reuse rate of the policy's huge bucket, if it has one (Gemini).
    fn bucket_reuse_rate(&self) -> f64 {
        0.0
    }

    /// One-line internal-state description for diagnostics.
    fn debug_stats(&self) -> String {
        String::new()
    }
}

/// A trivial policy that always uses base pages; the `Host-B-VM-B`
/// baseline, and a convenient default for tests.
#[derive(Debug, Clone, Default)]
pub struct BasePagesOnly;

impl HugePolicy for BasePagesOnly {
    fn name(&self) -> &'static str {
        "Base"
    }

    fn fault_decision(&mut self, _ctx: &FaultCtx<'_>) -> FaultDecision {
        FaultDecision::Base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_merge_accumulates_everything() {
        let mut a = Effects::cost(Cycles(10));
        a.gva_regions_invalidated.push(1);
        let mut b = Effects::cost(Cycles(5));
        b.gva_regions_invalidated.push(2);
        b.gpa_regions_changed.push(3);
        b.shootdowns = 2;
        b.pages_copied = 7;
        b.pages_zeroed = 1;
        a.merge(b);
        assert_eq!(a.cycles, Cycles(15));
        assert_eq!(a.gva_regions_invalidated, vec![1, 2]);
        assert_eq!(a.gpa_regions_changed, vec![3]);
        assert_eq!(a.shootdowns, 2);
        assert_eq!(a.pages_copied, 7);
        assert_eq!(a.pages_zeroed, 1);
    }

    #[test]
    fn base_pages_only_always_says_base() {
        let buddy = BuddyAllocator::new(64);
        let table = AddressSpace::new();
        let ctx = FaultCtx {
            layer: LayerKind::Guest,
            vm: VmId(0),
            addr_frame: 0,
            vma: None,
            first_touch_in_vma: true,
            region_pop: table.region_population(0),
            buddy: &buddy,
            table: &table,
        };
        let mut p = BasePagesOnly;
        assert_eq!(p.fault_decision(&ctx), FaultDecision::Base);
        assert_eq!(p.name(), "Base");
        assert!(!p.intercept_huge_free(0, Cycles::ZERO));
    }

    #[test]
    fn region_within_vma_checks_coverage() {
        use crate::vma::VmaSet;
        let mut vmas = VmaSet::new(0);
        // 2 MiB + one page: region 0 covered, region 1 not.
        let vma = vmas
            .mmap(gemini_sim_core::HUGE_PAGE_SIZE + gemini_sim_core::BASE_PAGE_SIZE)
            .unwrap();
        let buddy = BuddyAllocator::new(64);
        let table = AddressSpace::new();
        let mk = |frame: u64| FaultCtx {
            layer: LayerKind::Guest,
            vm: VmId(0),
            addr_frame: frame,
            vma: Some(&vma),
            first_touch_in_vma: false,
            region_pop: table.region_population(frame >> 9),
            buddy: &buddy,
            table: &table,
        };
        assert!(mk(vma.start_frame()).region_within_vma());
        assert!(!mk(vma.start_frame() + 512).region_within_vma());
    }
}

//! Cross-layer huge-page alignment metrics.
//!
//! A guest huge page (GVA region mapped 2 MiB → GPA) is *well-aligned* when
//! the EPT also maps that GPA region with a 2 MiB leaf; symmetrically for
//! host huge pages. The tables in the paper (Tables 1, 3, 4) report the
//! rate of well-aligned huge pages per system — computed here by scanning
//! both layers, exactly like the MHPS component does.

use gemini_page_table::AddressSpace;

/// Counts of huge pages at each layer and the aligned intersection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignmentStats {
    /// Huge leaves in the guest process table.
    pub guest_huge: u64,
    /// Huge leaves in the VM (EPT) table.
    pub host_huge: u64,
    /// Guest huge pages whose GPA region is backed by a host huge page.
    pub aligned_pairs: u64,
}

impl AlignmentStats {
    /// Rate of well-aligned huge pages among all huge pages formed at
    /// either layer (each aligned pair counts one huge page per layer).
    ///
    /// Returns 0 when no huge pages exist at all.
    pub fn aligned_rate(&self) -> f64 {
        let total = self.guest_huge + self.host_huge;
        if total == 0 {
            0.0
        } else {
            (2 * self.aligned_pairs) as f64 / total as f64
        }
    }

    /// Guest huge pages that are *not* backed huge (mis-aligned from the
    /// guest's side).
    pub fn misaligned_guest(&self) -> u64 {
        self.guest_huge - self.aligned_pairs
    }

    /// Host huge pages not matched by a guest huge page (mis-aligned from
    /// the host's side).
    pub fn misaligned_host(&self) -> u64 {
        self.host_huge - self.aligned_pairs
    }
}

/// Scans one guest table against its EPT and computes alignment counts.
pub fn alignment_stats(guest: &AddressSpace, ept: &AddressSpace) -> AlignmentStats {
    let guest_huge = guest.huge_mapped();
    let host_huge = ept.huge_mapped();
    let aligned_pairs = guest
        .iter_huge()
        .filter(|&(_gva_h, gpa_h)| ept.huge_leaf(gpa_h).is_some())
        .count() as u64;
    AlignmentStats {
        guest_huge,
        host_huge,
        aligned_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_aligned_setup_scores_one() {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        guest.map_huge(0, 10).unwrap();
        guest.map_huge(1, 11).unwrap();
        ept.map_huge(10, 0).unwrap();
        ept.map_huge(11, 1).unwrap();
        let s = alignment_stats(&guest, &ept);
        assert_eq!(s.aligned_pairs, 2);
        assert_eq!(s.aligned_rate(), 1.0);
        assert_eq!(s.misaligned_guest(), 0);
        assert_eq!(s.misaligned_host(), 0);
    }

    #[test]
    fn misalignment_scenario_scores_zero() {
        // Guest all base, host all huge — the paper's "Misalignment".
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        for i in 0..512 {
            guest.map_base(i, i).unwrap();
        }
        ept.map_huge(0, 0).unwrap();
        let s = alignment_stats(&guest, &ept);
        assert_eq!(s.guest_huge, 0);
        assert_eq!(s.host_huge, 1);
        assert_eq!(s.aligned_rate(), 0.0);
        assert_eq!(s.misaligned_host(), 1);
    }

    #[test]
    fn partial_alignment_counts_pairs() {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        // Guest huge page at GPA region 5, backed huge: aligned.
        guest.map_huge(0, 5).unwrap();
        ept.map_huge(5, 50).unwrap();
        // Guest huge page at GPA region 6, backed by base pages: not.
        guest.map_huge(1, 6).unwrap();
        for i in 0..512 {
            ept.map_base(6 * 512 + i, 9000 + i).unwrap();
        }
        // Host huge page at GPA region 7 with no guest huge page.
        ept.map_huge(7, 70).unwrap();
        let s = alignment_stats(&guest, &ept);
        assert_eq!(s.guest_huge, 2);
        assert_eq!(s.host_huge, 2);
        assert_eq!(s.aligned_pairs, 1);
        assert!((s.aligned_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.misaligned_guest(), 1);
        assert_eq!(s.misaligned_host(), 1);
    }

    #[test]
    fn empty_tables_do_not_divide_by_zero() {
        let s = alignment_stats(&AddressSpace::new(), &AddressSpace::new());
        assert_eq!(s.aligned_rate(), 0.0);
    }
}

//! MHPS — the misaligned huge page scanner (paper §4, Figure 4).
//!
//! MHPS runs at the host. It periodically scans the page tables of guest
//! processes (for huge pages formed in the guest) and the VM page tables
//! (for huge pages formed in the host), labels each huge page with its
//! layer, guest physical address and VM id, and identifies the mis-aligned
//! ones by comparing labels. Mis-aligned pages are classified:
//!
//! - **type-1**: no base pages are mapped at the other layer in the
//!   corresponding region — a new huge page (or contiguous base pages) can
//!   be placed there directly, so the region is worth *booking*;
//! - **type-2**: base pages already occupy the region at the other layer
//!   and cannot be promoted without migration — the *promoter* (MHPP)
//!   steers the existing page-coalescing machinery at them first.

use gemini_page_table::AddressSpace;
use gemini_sim_core::{VmId, HUGE_PAGE_ORDER};
use std::collections::BTreeSet;

/// Classification of a mis-aligned huge page (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisalignedType {
    /// No base pages mapped at the other layer: fixable by placement.
    Type1,
    /// Base pages present at the other layer: fixable only by promotion
    /// (with migration).
    Type2,
}

/// Result of scanning one VM's two page-table layers.
#[derive(Debug, Clone, Default)]
pub struct VmScan {
    /// GPA regions of **host** huge pages with no guest mapping at all
    /// (type-1): the guest should book these.
    pub host_type1: Vec<u64>,
    /// GPA regions of **host** huge pages partially covered by guest base
    /// pages (type-2), with the GVA regions whose base pages map into
    /// them — the guest promoter's priority queue.
    pub host_type2: Vec<(u64, Vec<u64>)>,
    /// GPA regions of **guest** huge pages with an entirely empty EPT
    /// region (type-1): the host should book/back these huge.
    pub guest_type1: Vec<u64>,
    /// GPA regions of **guest** huge pages whose EPT region is partially
    /// base-backed (type-2): the host promoter's priority queue.
    pub guest_type2: Vec<u64>,
    /// All GPA regions currently mapped huge by the guest (the host fault
    /// path prefers huge backing for these).
    pub guest_huge_regions: BTreeSet<u64>,
    /// GPA regions that are well-aligned right now (guest huge backed by
    /// host huge) — the bucket intercepts frees of these.
    pub aligned_regions: BTreeSet<u64>,
}

impl VmScan {
    /// Number of mis-aligned huge pages found, across layers and types.
    pub fn misaligned_total(&self) -> usize {
        self.host_type1.len()
            + self.host_type2.len()
            + self.guest_type1.len()
            + self.guest_type2.len()
    }
}

/// Scans one VM: `guest` is its process page table (GVA → GPA frames) and
/// `ept` its VM page table (GPA → HPA frames).
///
/// The scan is read-only and linear in the number of mapped regions, like
/// the kernel thread (`kgeminid`) of the prototype. `_vm` is carried for
/// symmetry with the prototype's labeling; the caller keys the result by
/// VM id.
pub fn scan_vm(_vm: VmId, guest: &AddressSpace, ept: &AddressSpace) -> VmScan {
    let mut scan = VmScan::default();

    // Pass 1: guest base pages, bucketed by the GPA region they map into
    // (the reverse map MHPS needs for type-2 host pages). Collected flat
    // and sorted rather than built as a map of sets: the scan runs every
    // period and each base page costs one push here instead of a tree
    // insert. Sort + dedup yields the same (region-ascending, unique)
    // grouping a `BTreeMap<u64, BTreeSet<u64>>` would. Only pairs whose
    // GPA region the EPT maps huge can ever be consulted by pass 3, so
    // everything else is dropped before the sort.
    let mut base_pairs: Vec<(u64, u64)> = guest
        .iter_base()
        .filter(|&(_, gpa_frame)| ept.huge_leaf(gpa_frame >> HUGE_PAGE_ORDER).is_some())
        .map(|(gva_frame, gpa_frame)| (gpa_frame >> HUGE_PAGE_ORDER, gva_frame >> HUGE_PAGE_ORDER))
        .collect();
    base_pairs.sort_unstable();
    base_pairs.dedup();

    // Pass 2: guest huge pages → which GPA regions the guest maps huge,
    // and their alignment status against the EPT.
    for (_gva_region, gpa_region) in guest.iter_huge() {
        scan.guest_huge_regions.insert(gpa_region);
        if ept.huge_leaf(gpa_region).is_some() {
            scan.aligned_regions.insert(gpa_region);
        } else {
            let pop = ept.region_population(gpa_region);
            if pop.present == 0 {
                scan.guest_type1.push(gpa_region);
            } else {
                scan.guest_type2.push(gpa_region);
            }
        }
    }

    // Pass 3: host huge pages (EPT huge leaves) not matched by a guest
    // huge page.
    for (gpa_region, _hpa_huge) in ept.iter_huge() {
        if scan.guest_huge_regions.contains(&gpa_region) {
            continue;
        }
        let lo = base_pairs.partition_point(|&(g, _)| g < gpa_region);
        let hi = lo + base_pairs[lo..].partition_point(|&(g, _)| g == gpa_region);
        if lo == hi {
            scan.host_type1.push(gpa_region);
        } else {
            scan.host_type2.push((
                gpa_region,
                base_pairs[lo..hi].iter().map(|&(_, gva)| gva).collect(),
            ));
        }
    }

    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    const VM: VmId = VmId(1);

    #[test]
    fn aligned_pages_are_not_reported() {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        guest.map_huge(0, 4).unwrap();
        ept.map_huge(4, 9).unwrap();
        let s = scan_vm(VM, &guest, &ept);
        assert_eq!(s.misaligned_total(), 0);
        assert!(s.aligned_regions.contains(&4));
        assert!(s.guest_huge_regions.contains(&4));
    }

    #[test]
    fn host_huge_with_no_guest_mapping_is_type1() {
        let guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        ept.map_huge(7, 0).unwrap();
        let s = scan_vm(VM, &guest, &ept);
        assert_eq!(s.host_type1, vec![7]);
        assert!(s.host_type2.is_empty());
    }

    #[test]
    fn host_huge_with_guest_base_pages_is_type2_with_reverse_map() {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        ept.map_huge(7, 0).unwrap();
        // Guest base pages from two different GVA regions map into GPA
        // region 7.
        guest.map_base(3, 7 * 512 + 8).unwrap(); // GVA region 0.
        guest.map_base(512 + 4, 7 * 512 + 9).unwrap(); // GVA region 1.
        let s = scan_vm(VM, &guest, &ept);
        assert!(s.host_type1.is_empty());
        assert_eq!(s.host_type2, vec![(7, vec![0, 1])]);
    }

    #[test]
    fn guest_huge_with_empty_ept_region_is_type1() {
        let mut guest = AddressSpace::new();
        let ept = AddressSpace::new();
        guest.map_huge(2, 5).unwrap();
        let s = scan_vm(VM, &guest, &ept);
        assert_eq!(s.guest_type1, vec![5]);
        assert!(s.guest_type2.is_empty());
    }

    #[test]
    fn guest_huge_with_partial_ept_backing_is_type2() {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        guest.map_huge(2, 5).unwrap();
        ept.map_base(5 * 512 + 100, 77).unwrap();
        let s = scan_vm(VM, &guest, &ept);
        assert!(s.guest_type1.is_empty());
        assert_eq!(s.guest_type2, vec![5]);
    }

    #[test]
    fn mixed_scene_is_fully_classified() {
        let mut guest = AddressSpace::new();
        let mut ept = AddressSpace::new();
        // Aligned pair at GPA region 1.
        guest.map_huge(0, 1).unwrap();
        ept.map_huge(1, 1).unwrap();
        // Guest huge, EPT empty at GPA region 2 (guest type-1).
        guest.map_huge(1, 2).unwrap();
        // Host huge at GPA region 3, untouched by the guest (host type-1).
        ept.map_huge(3, 3).unwrap();
        // Host huge at GPA region 4, guest base pages inside (host type-2).
        ept.map_huge(4, 4).unwrap();
        guest.map_base(2 * 512, 4 * 512).unwrap();
        let s = scan_vm(VM, &guest, &ept);
        assert_eq!(s.guest_type1, vec![2]);
        assert_eq!(s.host_type1, vec![3]);
        assert_eq!(s.host_type2.len(), 1);
        assert_eq!(s.host_type2[0].0, 4);
        assert_eq!(s.aligned_regions.len(), 1);
        assert_eq!(s.misaligned_total(), 3);
    }

    #[test]
    fn empty_tables_scan_clean() {
        let s = scan_vm(VM, &AddressSpace::new(), &AddressSpace::new());
        assert_eq!(s.misaligned_total(), 0);
        assert!(s.guest_huge_regions.is_empty());
        assert!(s.aligned_regions.is_empty());
    }
}

//! Applicability and overhead with collocated VMs (paper §6.5).
//!
//! Two 16-vCPU VMs share the host: one runs a TLB-sensitive key-value
//! store, the other a non-TLB-sensitive database (Shore). Gemini should
//! speed up the sensitive VM while costing the insensitive one nothing
//! (the paper measures ≤ 3 % overhead).
//!
//! ```text
//! cargo run --release --example collocated_vms
//! ```

use gemini_harness::experiments::collocated;
use gemini_harness::Scale;

fn main() {
    let scale = Scale::demo();
    let res = collocated::run(&scale, Some(&[("Masstree", "Shore")])).expect("runs succeed");
    print!("{}", res.render_fig17());
    print!("{}", res.render_fig18());
    println!(
        "\nGemini overhead on the non-TLB-sensitive VM: {:.1}%  (paper: <= 3%)",
        res.gemini_nonsensitive_overhead() * 100.0
    );
}

//! Design-choice ablations beyond the paper's figures: Algorithm 1's
//! adaptive booking timeout vs fixed settings, and the huge-preallocation
//! threshold sweep (the paper selected 256 experimentally).

use gemini_bench::{bench_scale, header};
use gemini_harness::experiments::ablations;

fn main() {
    header("ablations", "Algorithm 1 + preallocation-threshold ablations");
    let scale = bench_scale();
    let timeout = ablations::run_timeout(&scale, "Masstree").expect("ablation succeeds");
    print!("{}", timeout.render());
    println!();
    let prealloc = ablations::run_prealloc(&scale, "Xapian").expect("sweep succeeds");
    print!("{}", prealloc.render());
}

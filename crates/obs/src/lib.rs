//! Observability layer for the Gemini simulator.
//!
//! The paper's argument is temporal: Gemini wins because bookings,
//! EMA placements and bucket refills change *when* and *where* huge
//! pages become well-aligned. End-of-run snapshots can't show a
//! promotion storm or FMFI decaying mid-run; this crate can. It
//! provides three pieces, all behind one shared [`Recorder`] handle:
//!
//! 1. **Event tracing** — a deterministic, cycle-stamped structured
//!    event stream ([`Event`]) covering faults, promotions,
//!    demotions, bookings/timeouts, EMA hits/misses, bucket traffic,
//!    migrations and TLB shootdowns, buffered in a bounded ring with
//!    per-category filtering ([`cat`]) so tracing is near-zero-cost
//!    when off.
//! 2. **Metrics registry** — named counters, gauges and log₂
//!    histograms ([`Registry`]).
//! 3. **Time-series sampler** — clock-driven periodic samples
//!    ([`SamplePoint`]: FMFI, well-aligned rate, TLB-miss rate, free
//!    order-9 blocks) at a configurable cycle interval.
//!
//! Everything serializes to JSON Lines with hand-rolled formatting —
//! no external dependencies.
//!
//! ```
//! use gemini_obs::{cat, EventKind, Layer, Recorder, TraceConfig};
//! use gemini_sim_core::Cycles;
//!
//! let rec = Recorder::new(&TraceConfig::all());
//! rec.set_cycle(Cycles(1_200));
//! rec.emit(cat::BOOKING, 1, Layer::Host, || EventKind::Booked { region: 7 });
//! rec.counter_add("demo.bookings", 1);
//! assert_eq!(rec.events().len(), 1);
//! assert_eq!(rec.registry().counter("demo.bookings"), 1);
//! ```

pub mod event;
pub mod json;
pub mod jsonread;
pub mod metrics;
pub mod profile;
pub mod recorder;

pub use event::{cat, Event, EventKind, Layer, PromoMode, SamplePoint};
pub use json::{json_f64, json_str};
pub use metrics::{Histogram, Registry};
pub use profile::{
    chrome_trace_json, chrome_trace_json_with_counters, Phase, ProfileReport, Profiler, Span,
    TraceSpan,
};
pub use recorder::{Recorder, TraceConfig};

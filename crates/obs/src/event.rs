//! The structured event taxonomy of the simulator.
//!
//! Every interesting decision in the stack — a fault resolution, a
//! promotion, a booking consumed, a bucket refill, a TLB shootdown —
//! can be captured as an [`Event`]: a cycle-stamped record of *what*
//! happened, *where* (guest layer, host layer, or machine-wide) and
//! *to whom* (which VM). Events belong to categories (bitmask
//! constants in [`cat`]) so recording can be filtered per category at
//! near-zero cost.

use crate::json::{json_f64, json_str};

/// Category bitmask constants used to enable/filter event recording.
///
/// A [`crate::TraceConfig`] carries a union of these bits; an event is
/// only materialised when its category bit is set, so a disabled
/// category costs one load and one branch per call site.
pub mod cat {
    /// Page-fault resolutions (guest page faults and EPT violations).
    pub const FAULT: u32 = 1 << 0;
    /// Huge-page promotions (in-place, fill-then-promote, or copy).
    pub const PROMOTION: u32 = 1 << 1;
    /// Huge-page demotions (leaf splits).
    pub const DEMOTION: u32 = 1 << 2;
    /// Huge booking lifecycle: booked, consumed, expired (Algorithm 1).
    pub const BOOKING: u32 = 1 << 3;
    /// EMA offset-descriptor hits, misses and sub-VMA splits.
    pub const EMA: u32 = 1 << 4;
    /// Huge-bucket offers, reuses and releases.
    pub const BUCKET: u32 = 1 << 5;
    /// TLB shootdown rounds charged to the MMU.
    pub const SHOOTDOWN: u32 = 1 << 6;
    /// Page migrations (compaction / copy traffic).
    pub const MIGRATION: u32 = 1 << 7;
    /// Runtime-control decisions (adaptive booking-timeout updates).
    pub const RUNTIME: u32 = 1 << 8;
    /// Every category.
    pub const ALL: u32 =
        FAULT | PROMOTION | DEMOTION | BOOKING | EMA | BUCKET | SHOOTDOWN | MIGRATION | RUNTIME;
    /// No category (tracing off).
    pub const NONE: u32 = 0;
}

/// Which layer of the two-dimensional translation stack an event
/// originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// The guest kernel's memory manager (GVA → GPA).
    Guest,
    /// The hypervisor / host memory manager (GPA → HPA).
    Host,
    /// Machine-wide (not attributable to one translation layer).
    Sys,
}

impl Layer {
    /// Stable lowercase label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Guest => "guest",
            Layer::Host => "host",
            Layer::Sys => "sys",
        }
    }
}

/// How a promotion produced its huge leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoMode {
    /// All 512 base frames were already physically contiguous and
    /// congruent: the leaf was rewritten in place, no data moved.
    InPlace,
    /// The region was promoted in place after zero-filling the holes.
    Fill,
    /// Pages were copied into a fresh well-aligned 2 MiB block
    /// (khugepaged-style collapse).
    Copy,
}

impl PromoMode {
    /// Stable lowercase label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            PromoMode::InPlace => "in_place",
            PromoMode::Fill => "fill",
            PromoMode::Copy => "copy",
        }
    }
}

/// The payload of one trace event.
///
/// Frames and regions are in the address space of the event's
/// [`Layer`]: GVA/GPA numbers for `Guest`, GPA/HPA numbers for `Host`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A demand fault was resolved ([`cat::FAULT`]).
    Fault {
        /// Faulting frame number (GVA frame for guest, GPA frame for host).
        frame: u64,
        /// Whether the fault was resolved with a 2 MiB mapping.
        huge: bool,
        /// Whether the policy's placement request was honored by the
        /// allocator (congruent/targeted allocation succeeded).
        honored: bool,
    },
    /// A 2 MiB region was promoted to a huge leaf ([`cat::PROMOTION`]).
    Promotion {
        /// The promoted region index (frame >> 9).
        region: u64,
        /// How the huge leaf was produced.
        mode: PromoMode,
        /// Base pages copied to assemble the leaf (0 for in-place).
        pages_copied: u64,
        /// Base pages zero-filled to complete the leaf.
        pages_zeroed: u64,
    },
    /// A huge leaf was split back into base pages ([`cat::DEMOTION`]).
    Demotion {
        /// The demoted region index.
        region: u64,
    },
    /// A 2 MiB host block was booked for future congruent base
    /// allocations ([`cat::BOOKING`]).
    Booked {
        /// The booked region index.
        region: u64,
    },
    /// A booking satisfied an allocation ([`cat::BOOKING`]).
    BookingConsumed {
        /// The region the booking covered.
        region: u64,
        /// `true` if the whole 2 MiB block was taken at once,
        /// `false` if a single congruent base frame was carved out.
        whole: bool,
    },
    /// Bookings hit their adaptive timeout and were returned to the
    /// allocator ([`cat::BOOKING`]).
    BookingExpired {
        /// Number of bookings that expired in this pass.
        regions: u64,
    },
    /// The adaptive controller (Algorithm 1) retuned the booking
    /// timeout ([`cat::RUNTIME`]).
    TimeoutAdjusted {
        /// The new timeout, in cycles.
        timeout_cycles: u64,
    },
    /// An EMA offset descriptor steered this allocation to a
    /// congruent frame ([`cat::EMA`]).
    EmaHit {
        /// The EMA interval key (VMA or sub-VMA id).
        key: u64,
    },
    /// No usable offset descriptor existed; a new one was established
    /// ([`cat::EMA`]).
    EmaMiss {
        /// The EMA interval key the descriptor was established for.
        key: u64,
    },
    /// Placement could not be honored, so the VMA's descriptor was
    /// split at a sub-VMA boundary ([`cat::EMA`]).
    SubVmaSplit {
        /// The key of the descriptor that was split.
        key: u64,
    },
    /// A freed well-aligned 2 MiB block entered the huge bucket
    /// ([`cat::BUCKET`]).
    BucketOffered {
        /// The offered region index.
        region: u64,
    },
    /// A bucket block directly backed a huge allocation
    /// ([`cat::BUCKET`]).
    BucketReused {
        /// The reused region index.
        region: u64,
    },
    /// Bucket blocks aged out and were released to the buddy
    /// allocator ([`cat::BUCKET`]).
    BucketReleased {
        /// Number of blocks released in this pass.
        regions: u64,
    },
    /// TLB shootdown rounds were charged ([`cat::SHOOTDOWN`]).
    Shootdown {
        /// Number of shootdown rounds.
        rounds: u64,
    },
    /// Base pages were migrated by compaction or promotion copies
    /// ([`cat::MIGRATION`]).
    Migration {
        /// Number of 4 KiB pages moved.
        pages: u64,
    },
}

impl EventKind {
    /// The category bit this kind belongs to.
    pub fn category(&self) -> u32 {
        match self {
            EventKind::Fault { .. } => cat::FAULT,
            EventKind::Promotion { .. } => cat::PROMOTION,
            EventKind::Demotion { .. } => cat::DEMOTION,
            EventKind::Booked { .. }
            | EventKind::BookingConsumed { .. }
            | EventKind::BookingExpired { .. } => cat::BOOKING,
            EventKind::TimeoutAdjusted { .. } => cat::RUNTIME,
            EventKind::EmaHit { .. }
            | EventKind::EmaMiss { .. }
            | EventKind::SubVmaSplit { .. } => cat::EMA,
            EventKind::BucketOffered { .. }
            | EventKind::BucketReused { .. }
            | EventKind::BucketReleased { .. } => cat::BUCKET,
            EventKind::Shootdown { .. } => cat::SHOOTDOWN,
            EventKind::Migration { .. } => cat::MIGRATION,
        }
    }

    /// Stable snake_case label used in summaries and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Fault { .. } => "fault",
            EventKind::Promotion { .. } => "promotion",
            EventKind::Demotion { .. } => "demotion",
            EventKind::Booked { .. } => "booked",
            EventKind::BookingConsumed { .. } => "booking_consumed",
            EventKind::BookingExpired { .. } => "booking_expired",
            EventKind::TimeoutAdjusted { .. } => "timeout_adjusted",
            EventKind::EmaHit { .. } => "ema_hit",
            EventKind::EmaMiss { .. } => "ema_miss",
            EventKind::SubVmaSplit { .. } => "sub_vma_split",
            EventKind::BucketOffered { .. } => "bucket_offered",
            EventKind::BucketReused { .. } => "bucket_reused",
            EventKind::BucketReleased { .. } => "bucket_released",
            EventKind::Shootdown { .. } => "shootdown",
            EventKind::Migration { .. } => "migration",
        }
    }

    fn payload_json(&self) -> String {
        match self {
            EventKind::Fault {
                frame,
                huge,
                honored,
            } => format!("\"frame\":{frame},\"huge\":{huge},\"honored\":{honored}"),
            EventKind::Promotion {
                region,
                mode,
                pages_copied,
                pages_zeroed,
            } => format!(
                "\"region\":{region},\"mode\":{},\"pages_copied\":{pages_copied},\"pages_zeroed\":{pages_zeroed}",
                json_str(mode.label())
            ),
            EventKind::Demotion { region }
            | EventKind::Booked { region }
            | EventKind::BucketOffered { region }
            | EventKind::BucketReused { region } => format!("\"region\":{region}"),
            EventKind::BookingConsumed { region, whole } => {
                format!("\"region\":{region},\"whole\":{whole}")
            }
            EventKind::BookingExpired { regions } | EventKind::BucketReleased { regions } => {
                format!("\"regions\":{regions}")
            }
            EventKind::TimeoutAdjusted { timeout_cycles } => {
                format!("\"timeout_cycles\":{timeout_cycles}")
            }
            EventKind::EmaHit { key } | EventKind::EmaMiss { key } | EventKind::SubVmaSplit { key } => {
                format!("\"key\":{key}")
            }
            EventKind::Shootdown { rounds } => format!("\"rounds\":{rounds}"),
            EventKind::Migration { pages } => format!("\"pages\":{pages}"),
        }
    }
}

/// One cycle-stamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// Id of the VM the event concerns (0 when not VM-specific).
    pub vm: u32,
    /// The translation layer the event originated from.
    pub layer: Layer,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes the event as one JSON object (one JSON Lines row).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"event\",\"cycle\":{},\"vm\":{},\"layer\":{},\"kind\":{},{}}}",
            self.cycle,
            self.vm,
            json_str(self.layer.label()),
            json_str(self.kind.label()),
            self.kind.payload_json()
        )
    }
}

/// One point of the clock-driven time series emitted by the sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePoint {
    /// Simulated cycle the sample was taken at.
    pub cycle: u64,
    /// Host-level free-memory fragmentation index at order 9.
    pub host_fmfi: f64,
    /// Guest-level FMFI at order 9 (first VM when several exist).
    pub guest_fmfi: f64,
    /// Fraction of touched regions backed well-aligned (2 MiB leaves
    /// at both the guest page table and the EPT).
    pub aligned_rate: f64,
    /// STLB miss ratio since the start of the run.
    pub tlb_miss_rate: f64,
    /// Free order-9 (2 MiB) blocks left in the host allocator.
    pub free_order9: u64,
}

impl SamplePoint {
    /// Serializes the sample as one JSON object (one JSON Lines row).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"sample\",\"cycle\":{},\"host_fmfi\":{},\"guest_fmfi\":{},\"aligned_rate\":{},\"tlb_miss_rate\":{},\"free_order9\":{}}}",
            self.cycle,
            json_f64(self.host_fmfi),
            json_f64(self.guest_fmfi),
            json_f64(self.aligned_rate),
            json_f64(self.tlb_miss_rate),
            self.free_order9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_disjoint_and_covered_by_all() {
        let kinds = [
            EventKind::Fault {
                frame: 1,
                huge: true,
                honored: false,
            },
            EventKind::Promotion {
                region: 2,
                mode: PromoMode::Copy,
                pages_copied: 3,
                pages_zeroed: 4,
            },
            EventKind::Demotion { region: 5 },
            EventKind::Booked { region: 6 },
            EventKind::BookingConsumed {
                region: 7,
                whole: true,
            },
            EventKind::BookingExpired { regions: 8 },
            EventKind::TimeoutAdjusted { timeout_cycles: 9 },
            EventKind::EmaHit { key: 10 },
            EventKind::EmaMiss { key: 11 },
            EventKind::SubVmaSplit { key: 12 },
            EventKind::BucketOffered { region: 13 },
            EventKind::BucketReused { region: 14 },
            EventKind::BucketReleased { regions: 15 },
            EventKind::Shootdown { rounds: 16 },
            EventKind::Migration { pages: 17 },
        ];
        for k in &kinds {
            let c = k.category();
            assert_eq!(c.count_ones(), 1, "{} has one category bit", k.label());
            assert_eq!(c & cat::ALL, c, "{} covered by ALL", k.label());
        }
    }

    #[test]
    fn event_json_is_one_flat_object() {
        let e = Event {
            cycle: 1200,
            vm: 1,
            layer: Layer::Guest,
            kind: EventKind::Promotion {
                region: 4,
                mode: PromoMode::InPlace,
                pages_copied: 0,
                pages_zeroed: 12,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"event\",\"cycle\":1200,\"vm\":1,\"layer\":\"guest\",\
             \"kind\":\"promotion\",\"region\":4,\"mode\":\"in_place\",\
             \"pages_copied\":0,\"pages_zeroed\":12}"
        );
    }

    #[test]
    fn sample_json_renders_floats_plainly() {
        let s = SamplePoint {
            cycle: 5,
            host_fmfi: 0.25,
            guest_fmfi: 0.0,
            aligned_rate: 1.0,
            tlb_miss_rate: f64::NAN,
            free_order9: 7,
        };
        assert_eq!(
            s.to_json(),
            "{\"type\":\"sample\",\"cycle\":5,\"host_fmfi\":0.25,\"guest_fmfi\":0,\
             \"aligned_rate\":1,\"tlb_miss_rate\":null,\"free_order9\":7}"
        );
    }
}

#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), full test suite.
# Runs fully offline; the bench crate is a standalone workspace and is
# covered only when its registry dependencies are available.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace --offline -q

echo "== parallel determinism (GEMINI_JOBS=2) =="
# The determinism suite compares jobs=1 against jobs=4 by default; run it
# once more pinned to two workers so CI exercises a distinct jobs count.
GEMINI_JOBS=2 cargo test --offline -q -p gemini-harness --test parallel_determinism

echo "== layer parity + golden byte-identity (GEMINI_JOBS=2) =="
# Same policy through the guest and host LayerEngine instantiations, and
# the fig3/fig8 grids against their pre-refactor goldens, at two worker
# counts.
GEMINI_JOBS=2 cargo test --offline -q -p gemini-harness --test layer_parity

echo "== cargo doc (workspace, no-deps, -D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline -q

echo "== demo-scale timing (bench trajectory) =="
# Wall-clock of one demo-scale compare per jobs count. Parse the
# "timing:" lines into BENCH_*.json to track the executor's speedup.
BIN=target/release/gemini-sim
cargo build --release --offline -q -p gemini-harness --bin gemini-sim
for jobs in 1 0; do
    start=$(date +%s%N)
    "$BIN" compare --workload Redis --scale demo --fragmented --jobs "$jobs" \
        > /dev/null
    end=$(date +%s%N)
    echo "timing: demo compare jobs=$jobs wall_ms=$(( (end - start) / 1000000 ))"
done

echo "== bench report (quick scale, BENCH_pr5.json) =="
# The full bench harness at quick scale: reference-cell speedup vs the
# recorded pre-PR-4 baseline, per-cell fig3 timings, and a jobs sweep.
# The JSON schema is pinned by tests/parallel_determinism.rs. The PR-4
# trajectory file (BENCH_pr4.json, demo scale) is a committed artifact
# and is left untouched.
"$BIN" bench --scale quick --jobs 2 --json BENCH_pr5.json
echo "bench report written to BENCH_pr5.json"

echo "CI gate passed."
